//! Tile kinds occupying grid positions.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::{ChaId, OsCoreId};

/// What occupies a grid position on the die.
///
/// The partial-observability cases of paper Sec. II-B all stem from tile
/// kinds: IMC tiles and disabled tiles route traffic but expose no usable
/// PMON; LLC-only tiles expose a PMON but cannot host worker threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TileKind {
    /// A full core tile: processor core + CHA + LLC slice. Observable and
    /// usable as a traffic source or sink.
    Core {
        /// CHA ID of the tile's mesh stop / LLC slice.
        cha: ChaId,
        /// OS core ID of the tile's processor core.
        core: OsCoreId,
    },
    /// A tile whose core is fused off but whose CHA/LLC slice remains
    /// active. Observable (its PMON counts), but cannot run threads.
    LlcOnly {
        /// CHA ID of the still-active slice.
        cha: ChaId,
    },
    /// A tile disabled entirely (defective or fused-off core *and* slice).
    /// Still a valid mesh stop forwarding traffic, but its PMON is disabled,
    /// so traffic through it is invisible (paper Fig. 2).
    Disabled,
    /// An integrated memory controller tile: no core, no CHA, no PMON in our
    /// observation model; routes traffic.
    Imc,
    /// A non-core system tile (UPI / PCIe root and similar); routes traffic,
    /// not observable. Present on the Ice Lake die template.
    System,
}

impl TileKind {
    /// Whether the tile has an active CHA (and thus a PMON bank we can read).
    pub const fn has_cha(&self) -> bool {
        matches!(self, TileKind::Core { .. } | TileKind::LlcOnly { .. })
    }

    /// Whether the tile has an enabled processor core (usable for pinning
    /// worker threads).
    pub const fn has_core(&self) -> bool {
        matches!(self, TileKind::Core { .. })
    }

    /// CHA ID if the tile has an active CHA.
    pub const fn cha(&self) -> Option<ChaId> {
        match self {
            TileKind::Core { cha, .. } | TileKind::LlcOnly { cha } => Some(*cha),
            _ => None,
        }
    }

    /// OS core ID if the tile has an enabled core.
    pub const fn core(&self) -> Option<OsCoreId> {
        match self {
            TileKind::Core { core, .. } => Some(*core),
            _ => None,
        }
    }
}

impl fmt::Display for TileKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TileKind::Core { cha, core } => write!(f, "{core}/{cha}"),
            TileKind::LlcOnly { cha } => write!(f, "LLC/{cha}"),
            TileKind::Disabled => f.write_str("DIS"),
            TileKind::Imc => f.write_str("IMC"),
            TileKind::System => f.write_str("SYS"),
        }
    }
}

/// A tile instance: kind plus bookkeeping.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Tile {
    kind: TileKind,
}

impl Tile {
    /// Creates a tile of the given kind.
    pub const fn new(kind: TileKind) -> Self {
        Self { kind }
    }

    /// The tile's kind.
    pub const fn kind(&self) -> TileKind {
        self.kind
    }

    /// Whether uncore-PMON events at this tile are observable by a
    /// monitoring tool (active CHA required).
    pub const fn is_observable(&self) -> bool {
        self.kind.has_cha()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn core_tile_has_cha_and_core() {
        let t = Tile::new(TileKind::Core {
            cha: ChaId::new(3),
            core: OsCoreId::new(7),
        });
        assert!(t.kind().has_cha());
        assert!(t.kind().has_core());
        assert_eq!(t.kind().cha(), Some(ChaId::new(3)));
        assert_eq!(t.kind().core(), Some(OsCoreId::new(7)));
        assert!(t.is_observable());
    }

    #[test]
    fn llc_only_tile_is_observable_but_not_usable() {
        let t = Tile::new(TileKind::LlcOnly {
            cha: ChaId::new(25),
        });
        assert!(t.is_observable());
        assert!(!t.kind().has_core());
        assert_eq!(t.kind().core(), None);
    }

    #[test]
    fn disabled_imc_and_system_tiles_are_invisible() {
        for kind in [TileKind::Disabled, TileKind::Imc, TileKind::System] {
            let t = Tile::new(kind);
            assert!(!t.is_observable());
            assert_eq!(t.kind().cha(), None);
            assert_eq!(t.kind().core(), None);
        }
    }

    #[test]
    fn display_forms() {
        let t = TileKind::Core {
            cha: ChaId::new(1),
            core: OsCoreId::new(2),
        };
        assert_eq!(t.to_string(), "cpu2/CHA1");
        assert_eq!(TileKind::Imc.to_string(), "IMC");
    }
}
