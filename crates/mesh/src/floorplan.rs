//! Die templates and concrete floorplans.
//!
//! A [`Topology`] fixes the grid dimensions, the positions of the non-core
//! tiles (IMC, system agents), the routing discipline and the ID numbering
//! schemes; [`DieTemplate`] is a shorthand for the builtin Xeon
//! topologies. A [`Floorplan`] then assigns each core-capable position one
//! of three states — full core tile, LLC-only tile, or fully disabled tile
//! — and derives the two hidden ID spaces the paper's methodology recovers:
//!
//! * **CHA IDs** are assigned over tiles with an active CHA in the die's
//!   numbering order (column-major on Skylake/Cascade Lake, row-major on Ice
//!   Lake; paper Sec. III-B observes the column-major rule and that Ice Lake
//!   "is clearly different").
//! * **OS core IDs** are assigned over tiles with an enabled core following
//!   the per-generation enumeration rule reproduced from paper Table I:
//!   Skylake/Cascade Lake enumerate CHA IDs by residue class modulo 4 in the
//!   order `0, 2, 1, 3` (the "grouped with strides of 4" structure), Ice
//!   Lake enumerates them in plain ascending order.

use serde::{Deserialize, Serialize};

use crate::topology::{self, Topology};
use crate::{ChaId, FloorplanError, GridDim, OsCoreId, Tile, TileCoord, TileKind};

/// Physical die template: shorthand for the builtin Xeon [`Topology`]
/// descriptions. All geometry accessors delegate to precomputed topology
/// tables and return slices — nothing is re-derived per call.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DieTemplate {
    /// Skylake / Cascade Lake server XCC die: 5x6 tile grid, 28 core-capable
    /// tiles, IMC tiles at (1,0) and (1,5) (paper Fig. 1, [Tam et al.,
    /// ISSCC'18]).
    SkylakeXcc,
    /// Ice Lake server die modelled as a 6x8 grid (the paper reports an
    /// "8x6 tile grid" for the Xeon 6354, Fig. 5): 40 core-capable tiles,
    /// four IMC tiles on the left/right edges and four corner system tiles.
    IceLakeXcc,
}

impl DieTemplate {
    /// The builtin topology description this template names.
    pub fn topology(self) -> &'static Topology {
        match self {
            DieTemplate::SkylakeXcc => topology::skylake_xcc(),
            DieTemplate::IceLakeXcc => topology::icelake_xcc(),
        }
    }

    /// Grid dimensions of the die.
    pub fn dim(self) -> GridDim {
        self.topology().dim()
    }

    /// Positions of the integrated memory controller tiles.
    pub fn imc_positions(self) -> &'static [TileCoord] {
        self.topology().imc_positions()
    }

    /// Positions of non-core system tiles (UPI/PCIe agents).
    pub fn system_positions(self) -> &'static [TileCoord] {
        self.topology().system_positions()
    }

    /// CHA numbering order over enabled tiles for this generation.
    pub fn cha_numbering(self) -> ChaNumbering {
        self.topology().cha_numbering()
    }

    /// OS-core enumeration rule for this generation (paper Table I / Fig. 5).
    pub fn core_numbering(self) -> CoreNumbering {
        self.topology().core_numbering()
    }

    /// Coordinates of all core-capable positions, in the die's CHA numbering
    /// order.
    pub fn core_capable_positions(self) -> &'static [TileCoord] {
        self.topology().core_capable_positions()
    }

    /// Number of core-capable tiles on the die (28 for Skylake XCC, 40 for
    /// Ice Lake).
    pub fn core_capable_count(self) -> usize {
        self.topology().core_capable_count()
    }
}

/// Order in which enabled CHAs are numbered over the grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ChaNumbering {
    /// Columns left to right, rows top to bottom (Skylake/Cascade Lake).
    ColumnMajor,
    /// Rows top to bottom, columns left to right (Ice Lake).
    RowMajor,
}

/// Rule mapping enabled-core CHA IDs to OS core IDs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CoreNumbering {
    /// OS cores enumerate core-bearing CHA IDs grouped by `cha % 4` in class
    /// order `0, 2, 1, 3`, ascending within each class — the structure of
    /// paper Table I for the 8124M/8175M/8259CL parts.
    Stride4Class,
    /// OS cores enumerate core-bearing CHA IDs in ascending order (the Ice
    /// Lake pattern visible in paper Fig. 5).
    Ascending,
}

impl CoreNumbering {
    /// Orders the given core-bearing CHA IDs in OS enumeration order; OS core
    /// `k` is the `k`-th element of the result.
    pub fn enumerate(self, mut core_chas: Vec<ChaId>) -> Vec<ChaId> {
        match self {
            CoreNumbering::Ascending => core_chas.sort(),
            CoreNumbering::Stride4Class => {
                // Rank of each `id % 4` class in the OS enumeration. The
                // order [0, 2, 1, 3] is a self-inverse permutation, so the
                // table doubles as its own rank lookup.
                const CLASS_RANK: [usize; 4] = [0, 2, 1, 3];
                core_chas.sort_by_key(|cha| (CLASS_RANK[cha.index() % 4], cha.index()));
            }
        }
        core_chas
    }
}

/// Builder for a [`Floorplan`].
///
/// ```
/// use coremap_mesh::{DieTemplate, FloorplanBuilder, TileCoord};
///
/// # fn main() -> Result<(), coremap_mesh::FloorplanError> {
/// let plan = FloorplanBuilder::new(DieTemplate::SkylakeXcc)
///     .disable(TileCoord::new(0, 2))
///     .disable(TileCoord::new(3, 4))
///     .llc_only(TileCoord::new(4, 1))
///     .build()?;
/// assert_eq!(plan.cha_count(), 26); // 28 capable - 2 disabled
/// assert_eq!(plan.core_count(), 25); // minus the LLC-only tile
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct FloorplanBuilder {
    topology: Topology,
    disabled: Vec<TileCoord>,
    llc_only: Vec<TileCoord>,
}

impl FloorplanBuilder {
    /// Starts a floorplan on the given die template with every core-capable
    /// tile enabled.
    pub fn new(template: DieTemplate) -> Self {
        Self::from_topology(template.topology().clone())
    }

    /// Starts a floorplan on an arbitrary topology description. The
    /// topology's harvest mask seeds the disabled/LLC-only sets; further
    /// tiles can be harvested on top.
    pub fn from_topology(topology: Topology) -> Self {
        let disabled = topology.disabled_mask().to_vec();
        let llc_only = topology.llc_only_mask().to_vec();
        Self {
            topology,
            disabled,
            llc_only,
        }
    }

    /// Fully disables the tile at `coord` (defective core and slice: the
    /// tile still routes traffic but is invisible to the PMON).
    pub fn disable(mut self, coord: TileCoord) -> Self {
        if !self.disabled.contains(&coord) {
            self.disabled.push(coord);
        }
        self
    }

    /// Disables every tile in `coords`.
    pub fn disable_all<I: IntoIterator<Item = TileCoord>>(mut self, coords: I) -> Self {
        for c in coords {
            self = self.disable(c);
        }
        self
    }

    /// Marks the tile at `coord` LLC-only: core fused off, CHA/LLC active.
    pub fn llc_only(mut self, coord: TileCoord) -> Self {
        if !self.llc_only.contains(&coord) {
            self.llc_only.push(coord);
        }
        self
    }

    /// Marks every tile in `coords` LLC-only.
    pub fn llc_only_all<I: IntoIterator<Item = TileCoord>>(mut self, coords: I) -> Self {
        for c in coords {
            self = self.llc_only(c);
        }
        self
    }

    /// Builds the floorplan, assigning CHA and OS core IDs.
    ///
    /// # Errors
    ///
    /// Returns [`FloorplanError`] if a position is outside the grid, not
    /// core-capable, assigned conflicting states, or if no core remains
    /// enabled.
    pub fn build(self) -> Result<Floorplan, FloorplanError> {
        let topology = self.topology;
        let dim = topology.dim();
        let capable = topology.core_capable_positions();

        for &coord in self.disabled.iter().chain(self.llc_only.iter()) {
            if !dim.contains(coord) {
                return Err(FloorplanError::OutOfGrid { coord });
            }
            if !capable.contains(&coord) {
                return Err(FloorplanError::NotCoreCapable { coord });
            }
        }
        if let Some(&coord) = self.disabled.iter().find(|c| self.llc_only.contains(c)) {
            return Err(FloorplanError::ConflictingAssignment { coord });
        }

        // Assign CHA IDs over enabled (non-disabled) capable tiles in the
        // die's numbering order.
        let mut tiles = vec![Tile::new(TileKind::Disabled); dim.tile_count()];
        for &coord in topology.imc_positions() {
            tiles[dim.linear_index(coord)] = Tile::new(TileKind::Imc);
        }
        for &coord in topology.system_positions() {
            tiles[dim.linear_index(coord)] = Tile::new(TileKind::System);
        }

        let enabled: Vec<TileCoord> = capable
            .iter()
            .copied()
            .filter(|c| !self.disabled.contains(c))
            .collect();

        let mut core_chas = Vec::new();
        let mut cha_coords = Vec::with_capacity(enabled.len());
        for (idx, &coord) in enabled.iter().enumerate() {
            let cha = ChaId::new(idx as u16);
            cha_coords.push(coord);
            if !self.llc_only.contains(&coord) {
                core_chas.push(cha);
            }
        }
        if core_chas.is_empty() {
            return Err(FloorplanError::NoCores);
        }

        // An explicit core order pinned by the topology wins over the
        // generation rule — but only while it still names exactly the
        // core-bearing CHAs (extra harvest on top shifts CHA IDs).
        let os_order = match topology.core_order() {
            Some(order) => {
                let order = order.to_vec();
                if order.len() != core_chas.len() || !order.iter().all(|c| core_chas.contains(c)) {
                    return Err(FloorplanError::CoreOrderConflict);
                }
                order
            }
            None => topology.core_numbering().enumerate(core_chas),
        };
        let mut core_coords = Vec::with_capacity(os_order.len());
        for (os_idx, &cha) in os_order.iter().enumerate() {
            let coord = cha_coords[cha.index()];
            tiles[dim.linear_index(coord)] = Tile::new(TileKind::Core {
                cha,
                core: OsCoreId::new(os_idx as u16),
            });
            core_coords.push(coord);
        }
        #[allow(clippy::expect_used)]
        for &coord in &self.llc_only {
            let cha_idx = cha_coords
                .iter()
                .position(|&c| c == coord)
                // audit: allow(panic-safety): infallible — the builder validated above that every llc_only coord names an enabled CHA tile, so cha_coords contains it
                .expect("llc-only tile is enabled");
            tiles[dim.linear_index(coord)] = Tile::new(TileKind::LlcOnly {
                cha: ChaId::new(cha_idx as u16),
            });
        }

        Ok(Floorplan {
            topology,
            dim,
            tiles,
            cha_coords,
            core_coords,
        })
    }
}

/// A concrete die floorplan: the hidden ground truth that the mapping
/// methodology reconstructs from mesh-traffic observations.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Floorplan {
    topology: Topology,
    dim: GridDim,
    tiles: Vec<Tile>,
    /// Coordinate of each CHA, indexed by CHA ID.
    cha_coords: Vec<TileCoord>,
    /// Coordinate of each enabled core, indexed by OS core ID.
    core_coords: Vec<TileCoord>,
}

impl Floorplan {
    /// The topology description this floorplan instantiates.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Grid dimensions.
    pub fn dim(&self) -> GridDim {
        self.dim
    }

    /// The tile at `coord`.
    ///
    /// # Panics
    ///
    /// Panics if `coord` is outside the grid.
    pub fn tile(&self, coord: TileCoord) -> Tile {
        self.tiles[self.dim.linear_index(coord)]
    }

    /// Number of active CHAs (core tiles + LLC-only tiles).
    pub fn cha_count(&self) -> usize {
        self.cha_coords.len()
    }

    /// Number of enabled cores.
    pub fn core_count(&self) -> usize {
        self.core_coords.len()
    }

    /// All active CHA IDs in ascending order.
    pub fn chas(&self) -> impl Iterator<Item = ChaId> + '_ {
        (0..self.cha_coords.len()).map(|i| ChaId::new(i as u16))
    }

    /// All enabled OS core IDs in ascending order.
    pub fn cores(&self) -> impl Iterator<Item = OsCoreId> + '_ {
        (0..self.core_coords.len()).map(|i| OsCoreId::new(i as u16))
    }

    /// CHA IDs of LLC-only tiles (active slice, fused-off core), ascending.
    pub fn llc_only_chas(&self) -> Vec<ChaId> {
        self.tiles
            .iter()
            .filter_map(|t| match t.kind() {
                TileKind::LlcOnly { cha } => Some(cha),
                _ => None,
            })
            .collect::<std::collections::BTreeSet<_>>()
            .into_iter()
            .collect()
    }

    /// Ground-truth coordinate of a CHA.
    ///
    /// # Panics
    ///
    /// Panics if `cha` is not an active CHA of this floorplan.
    pub fn coord_of_cha(&self, cha: ChaId) -> TileCoord {
        self.cha_coords[cha.index()]
    }

    /// Ground-truth coordinate of an enabled core.
    ///
    /// # Panics
    ///
    /// Panics if `core` is not an enabled core of this floorplan.
    pub fn coord_of_core(&self, core: OsCoreId) -> TileCoord {
        self.core_coords[core.index()]
    }

    /// Ground-truth OS-core -> CHA mapping (the hidden mapping recovered by
    /// step 1 of the methodology). Indexed by OS core ID.
    #[allow(clippy::expect_used)]
    pub fn core_to_cha(&self) -> Vec<ChaId> {
        self.core_coords
            .iter()
            // audit: allow(panic-safety): infallible — core_coords only holds coords the builder tiled as TileKind::Core, which always carries a cha
            .map(|&coord| self.tile(coord).kind().cha().expect("core tile has cha"))
            .collect()
    }

    /// CHA co-located with the given enabled core.
    ///
    /// # Panics
    ///
    /// Panics if `core` is not an enabled core of this floorplan.
    #[allow(clippy::expect_used)]
    pub fn cha_of_core(&self, core: OsCoreId) -> ChaId {
        self.tile(self.coord_of_core(core))
            .kind()
            .cha()
            // audit: allow(panic-safety): infallible — coord_of_core returns a builder-tiled Core coord (its own "# Panics" contract rejects bad core IDs first)
            .expect("core tile has cha")
    }

    /// Whether PMON events at `coord` are observable (tile has an active
    /// CHA).
    pub fn is_observable(&self, coord: TileCoord) -> bool {
        self.tile(coord).is_observable()
    }

    /// Iterates over `(coord, tile)` for every grid position, row-major.
    pub fn iter(&self) -> impl Iterator<Item = (TileCoord, Tile)> + '_ {
        self.dim.iter_row_major().map(move |c| (c, self.tile(c)))
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;

    #[test]
    fn skx_template_geometry() {
        let t = DieTemplate::SkylakeXcc;
        assert_eq!(t.dim(), GridDim::new(5, 6));
        assert_eq!(t.core_capable_count(), 28);
        assert_eq!(t.imc_positions().len(), 2);
    }

    #[test]
    fn icx_template_geometry() {
        let t = DieTemplate::IceLakeXcc;
        assert_eq!(t.dim(), GridDim::new(6, 8));
        assert_eq!(t.core_capable_count(), 40);
        assert_eq!(t.imc_positions().len(), 4);
        assert_eq!(t.system_positions().len(), 4);
    }

    #[test]
    fn full_skx_floorplan_has_28_cores() {
        let plan = FloorplanBuilder::new(DieTemplate::SkylakeXcc)
            .build()
            .unwrap();
        assert_eq!(plan.cha_count(), 28);
        assert_eq!(plan.core_count(), 28);
        assert!(plan.llc_only_chas().is_empty());
    }

    #[test]
    fn cha_ids_are_column_major_skipping_disabled() {
        // Disable the second tile in column-major order: (1,0) is IMC, so
        // capable order starts (0,0),(2,0),(3,0),(4,0),(0,1)...
        let plan = FloorplanBuilder::new(DieTemplate::SkylakeXcc)
            .disable(TileCoord::new(2, 0))
            .build()
            .unwrap();
        assert_eq!(plan.coord_of_cha(ChaId::new(0)), TileCoord::new(0, 0));
        // CHA 1 skips the disabled (2,0) and lands on (3,0).
        assert_eq!(plan.coord_of_cha(ChaId::new(1)), TileCoord::new(3, 0));
        assert_eq!(plan.cha_count(), 27);
    }

    #[test]
    fn stride4_enumeration_matches_table1_8124m() {
        // 18 enabled cores => Table I row 1: CHA sequence
        // 0 4 8 12 16 | 2 6 10 14 | 1 5 9 13 17 | 3 7 11 15
        let chas: Vec<ChaId> = (0..18u16).map(ChaId::new).collect();
        let order = CoreNumbering::Stride4Class.enumerate(chas);
        let got: Vec<usize> = order.iter().map(|c| c.index()).collect();
        assert_eq!(
            got,
            vec![0, 4, 8, 12, 16, 2, 6, 10, 14, 1, 5, 9, 13, 17, 3, 7, 11, 15]
        );
    }

    #[test]
    fn stride4_enumeration_matches_table1_8175m() {
        let chas: Vec<ChaId> = (0..24u16).map(ChaId::new).collect();
        let order = CoreNumbering::Stride4Class.enumerate(chas);
        let got: Vec<usize> = order.iter().map(|c| c.index()).collect();
        assert_eq!(
            got,
            vec![
                0, 4, 8, 12, 16, 20, 2, 6, 10, 14, 18, 22, 1, 5, 9, 13, 17, 21, 3, 7, 11, 15, 19,
                23
            ]
        );
    }

    #[test]
    fn stride4_enumeration_matches_table1_8259cl_case_a() {
        // 26 CHAs with 3 and 25 LLC-only => Table I "62 instances" row.
        let chas: Vec<ChaId> = (0..26u16)
            .filter(|&c| c != 3 && c != 25)
            .map(ChaId::new)
            .collect();
        let order = CoreNumbering::Stride4Class.enumerate(chas);
        let got: Vec<usize> = order.iter().map(|c| c.index()).collect();
        assert_eq!(
            got,
            vec![
                0, 4, 8, 12, 16, 20, 24, 2, 6, 10, 14, 18, 22, 1, 5, 9, 13, 17, 21, 7, 11, 15, 19,
                23
            ]
        );
    }

    #[test]
    fn llc_only_tiles_keep_cha_but_lose_core() {
        let plan = FloorplanBuilder::new(DieTemplate::SkylakeXcc)
            .llc_only(TileCoord::new(0, 0))
            .build()
            .unwrap();
        assert_eq!(plan.cha_count(), 28);
        assert_eq!(plan.core_count(), 27);
        assert_eq!(plan.llc_only_chas(), vec![ChaId::new(0)]);
        assert!(matches!(
            plan.tile(TileCoord::new(0, 0)).kind(),
            TileKind::LlcOnly { .. }
        ));
    }

    #[test]
    fn core_to_cha_is_consistent_with_coords() {
        let plan = FloorplanBuilder::new(DieTemplate::SkylakeXcc)
            .disable(TileCoord::new(2, 2))
            .disable(TileCoord::new(4, 4))
            .build()
            .unwrap();
        let map = plan.core_to_cha();
        for core in plan.cores() {
            let cha = map[core.index()];
            assert_eq!(plan.coord_of_core(core), plan.coord_of_cha(cha));
            assert_eq!(plan.cha_of_core(core), cha);
        }
    }

    #[test]
    fn build_rejects_imc_position() {
        let err = FloorplanBuilder::new(DieTemplate::SkylakeXcc)
            .disable(TileCoord::new(1, 0))
            .build()
            .unwrap_err();
        assert!(matches!(err, FloorplanError::NotCoreCapable { .. }));
    }

    #[test]
    fn build_rejects_out_of_grid() {
        let err = FloorplanBuilder::new(DieTemplate::SkylakeXcc)
            .disable(TileCoord::new(9, 9))
            .build()
            .unwrap_err();
        assert!(matches!(err, FloorplanError::OutOfGrid { .. }));
    }

    #[test]
    fn build_rejects_conflicting_assignment() {
        let c = TileCoord::new(0, 1);
        let err = FloorplanBuilder::new(DieTemplate::SkylakeXcc)
            .disable(c)
            .llc_only(c)
            .build()
            .unwrap_err();
        assert_eq!(err, FloorplanError::ConflictingAssignment { coord: c });
    }

    #[test]
    fn build_rejects_all_cores_disabled() {
        let t = DieTemplate::SkylakeXcc;
        let err = FloorplanBuilder::new(t)
            .disable_all(t.core_capable_positions().iter().copied())
            .build()
            .unwrap_err();
        assert_eq!(err, FloorplanError::NoCores);
    }

    #[test]
    fn icx_uses_row_major_and_ascending() {
        let plan = FloorplanBuilder::new(DieTemplate::IceLakeXcc)
            .build()
            .unwrap();
        // First capable tile in row-major order is (0,1) since (0,0) is a
        // system tile.
        assert_eq!(plan.coord_of_cha(ChaId::new(0)), TileCoord::new(0, 1));
        // Ascending core numbering: OS core k co-located with CHA k when no
        // tiles are fused off.
        for core in plan.cores() {
            assert_eq!(plan.cha_of_core(core).index(), core.index());
        }
    }

    #[test]
    fn iter_covers_whole_grid() {
        let plan = FloorplanBuilder::new(DieTemplate::SkylakeXcc)
            .build()
            .unwrap();
        assert_eq!(plan.iter().count(), 30);
        let imcs = plan
            .iter()
            .filter(|(_, t)| matches!(t.kind(), TileKind::Imc))
            .count();
        assert_eq!(imcs, 2);
    }
}
