//! Property tests of floorplan construction invariants.

// Test/bench harness: unwraps abort the harness, which is the desired failure mode.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use coremap_mesh::{ChaId, DieTemplate, FloorplanBuilder, TileCoord, TileKind};
use proptest::prelude::*;

fn arbitrary_config(template: DieTemplate) -> impl Strategy<Value = (Vec<usize>, Vec<usize>)> {
    let n = template.core_capable_count();
    (
        prop::collection::btree_set(0..n, 0..n / 2),
        prop::collection::btree_set(0..n, 0..4),
    )
        .prop_map(|(d, l)| {
            let disabled: Vec<usize> = d.into_iter().collect();
            let llc: Vec<usize> = l.into_iter().filter(|i| !disabled.contains(i)).collect();
            (disabled, llc)
        })
}

fn check_template(template: DieTemplate, disabled: Vec<usize>, llc: Vec<usize>) {
    let capable = template.core_capable_positions();
    let disabled_pos: Vec<TileCoord> = disabled.iter().map(|&i| capable[i]).collect();
    let llc_pos: Vec<TileCoord> = llc.iter().map(|&i| capable[i]).collect();
    let expected_cha = capable.len() - disabled_pos.len();
    let expected_cores = expected_cha - llc_pos.len();
    if expected_cores == 0 {
        return;
    }
    let plan = FloorplanBuilder::new(template)
        .disable_all(disabled_pos.clone())
        .llc_only_all(llc_pos.clone())
        .build()
        .expect("valid configuration");

    // CHA IDs are contiguous and assigned in the die's numbering order over
    // enabled tiles.
    assert_eq!(plan.cha_count(), expected_cha);
    let mut last: Option<usize> = None;
    for (idx, &coord) in capable
        .iter()
        .filter(|c| !disabled_pos.contains(c))
        .enumerate()
    {
        assert_eq!(plan.coord_of_cha(ChaId::new(idx as u16)), coord);
        if let Some(prev) = last {
            assert_eq!(idx, prev + 1);
        }
        last = Some(idx);
    }

    // Core <-> CHA mapping is a bijection onto the non-LLC-only CHAs.
    assert_eq!(plan.core_count(), expected_cores);
    let mut seen = std::collections::HashSet::new();
    for core in plan.cores() {
        let cha = plan.cha_of_core(core);
        assert!(seen.insert(cha), "cha {cha} mapped twice");
        assert!(!plan.llc_only_chas().contains(&cha));
    }

    // Every grid position has a consistent tile kind.
    for (coord, tile) in plan.iter() {
        match tile.kind() {
            TileKind::Core { cha, core } => {
                assert_eq!(plan.coord_of_cha(cha), coord);
                assert_eq!(plan.coord_of_core(core), coord);
            }
            TileKind::LlcOnly { cha } => {
                assert_eq!(plan.coord_of_cha(cha), coord);
                assert!(llc_pos.contains(&coord));
            }
            TileKind::Disabled => {
                assert!(
                    disabled_pos.contains(&coord)
                        || !template.core_capable_positions().contains(&coord)
                );
            }
            TileKind::Imc => assert!(template.imc_positions().contains(&coord)),
            TileKind::System => assert!(template.system_positions().contains(&coord)),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn skylake_floorplans_hold_invariants(
        (disabled, llc) in arbitrary_config(DieTemplate::SkylakeXcc)
    ) {
        check_template(DieTemplate::SkylakeXcc, disabled, llc);
    }

    #[test]
    fn icelake_floorplans_hold_invariants(
        (disabled, llc) in arbitrary_config(DieTemplate::IceLakeXcc)
    ) {
        check_template(DieTemplate::IceLakeXcc, disabled, llc);
    }
}
