//! Hand-rolled argument parsing for the `core-map` CLI.

use coremap_fleet::CpuModel;

/// Top-level usage text.
pub const USAGE: &str = "\
core-map — physically locate Xeon cores on the tile grid (DATE'22 reproduction)

USAGE:
    core-map <COMMAND> [OPTIONS]

COMMANDS:
    map       Map one fleet instance and print/store its core map
    show      Render maps stored in a registry file
    fleet     Survey a fleet model: pattern and ID-mapping statistics
    channel   Send a message over the thermal covert channel
    verify    Map an instance and check it against hidden ground truth
    help      Print this help

COMMON OPTIONS:
    --model <8124m|8175m|8259cl|6354>   CPU model        [default: 8259cl]
    --index <N>                         instance index   [default: 0]
    --seed <N>                          fleet seed       [default: 2022]

COMMAND OPTIONS:
    map:      --registry <FILE>     append the result to a JSON registry
              --metrics <FILE>      write pipeline metrics as JSON
              --harden              aggressive fault tolerance (MSR retry,
                                    median-of-3 counters, degradation)
              --ilp-workers <N>     ILP branch-and-bound threads [default: 1]
              --topology <N|FILE>   reconstruct under one topology hypothesis:
                                    a builtin name (e.g. skylake-xcc) or a
                                    coremap-topology/v1 JSON file
              --topology-set <SET>  test a hypothesis set and keep the best
                                    fit: 'zoo' (all builtins) or a comma list
                                    of names/files
    show:     --registry <FILE>     registry to read (required)
              --ppin <HEX>          render only this chip
    fleet:    --instances <N>       instances to survey [default: 10]
              --workers <N>         mapping worker threads [default: all cores]
              --metrics <FILE>      write campaign metrics as JSON
              --harden              aggressive fault tolerance per instance
              --ilp-workers <N>     ILP threads per instance (idle mapping
                                    workers are redistributed automatically)
              --topology <N|FILE>   per-instance topology hypothesis
              --topology-set <SET>  per-instance hypothesis selection
    channel:  --message <TEXT>      payload              [default: hello]
              --rate <BPS>          bit rate             [default: 2]
              --senders <N>         sender count         [default: 1]
";

/// A parsed CLI invocation.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Map one instance.
    Map {
        model: CpuModel,
        index: usize,
        seed: u64,
        registry: Option<String>,
        metrics: Option<String>,
        harden: bool,
        ilp_workers: usize,
        topology: Option<String>,
        topology_set: Option<String>,
    },
    /// Render stored maps.
    Show { registry: String, ppin: Option<u64> },
    /// Fleet survey.
    Fleet {
        model: CpuModel,
        instances: usize,
        seed: u64,
        workers: Option<usize>,
        metrics: Option<String>,
        harden: bool,
        ilp_workers: usize,
        topology: Option<String>,
        topology_set: Option<String>,
    },
    /// Thermal covert channel transfer.
    Channel {
        model: CpuModel,
        index: usize,
        seed: u64,
        message: String,
        rate: f64,
        senders: usize,
    },
    /// Map + ground-truth verification.
    Verify {
        model: CpuModel,
        index: usize,
        seed: u64,
    },
    /// Print usage.
    Help,
}

fn parse_model(s: &str) -> Result<CpuModel, String> {
    match s.to_ascii_lowercase().as_str() {
        "8124m" | "8124" => Ok(CpuModel::Platinum8124M),
        "8175m" | "8175" => Ok(CpuModel::Platinum8175M),
        "8259cl" | "8259" => Ok(CpuModel::Platinum8259CL),
        "6354" | "icelake" | "icx" => Ok(CpuModel::Gold6354),
        other => Err(format!("unknown model '{other}'")),
    }
}

struct Opts<'a> {
    args: &'a [String],
    pos: usize,
}

impl<'a> Opts<'a> {
    fn value(&mut self, flag: &str) -> Result<String, String> {
        self.pos += 1;
        self.args
            .get(self.pos)
            .cloned()
            .ok_or_else(|| format!("{flag} requires a value"))
    }
}

/// Parses an argument vector (without the program name).
pub fn parse(args: &[String]) -> Result<Command, String> {
    let Some(cmd) = args.first() else {
        return Err("missing command".into());
    };
    let mut model = CpuModel::Platinum8259CL;
    let mut index = 0usize;
    let mut seed = 2022u64;
    let mut registry: Option<String> = None;
    let mut metrics: Option<String> = None;
    let mut ppin: Option<u64> = None;
    let mut instances = 10usize;
    let mut workers: Option<usize> = None;
    let mut message = "hello".to_owned();
    let mut rate = 2.0f64;
    let mut senders = 1usize;
    let mut harden = false;
    let mut ilp_workers = 1usize;
    let mut topology: Option<String> = None;
    let mut topology_set: Option<String> = None;

    let mut o = Opts { args, pos: 0 };
    while o.pos + 1 < args.len() {
        o.pos += 1;
        let flag = args[o.pos].clone();
        match flag.as_str() {
            "--model" => model = parse_model(&o.value("--model")?)?,
            "--index" => {
                index = o
                    .value("--index")?
                    .parse()
                    .map_err(|_| "--index must be a number".to_string())?
            }
            "--seed" => {
                seed = o
                    .value("--seed")?
                    .parse()
                    .map_err(|_| "--seed must be a number".to_string())?
            }
            "--registry" => registry = Some(o.value("--registry")?),
            "--metrics" => metrics = Some(o.value("--metrics")?),
            "--ppin" => {
                let raw = o.value("--ppin")?;
                let raw = raw.trim_start_matches("0x");
                ppin = Some(
                    u64::from_str_radix(raw, 16)
                        .map_err(|_| "--ppin must be a hex number".to_string())?,
                );
            }
            "--instances" => {
                instances = o
                    .value("--instances")?
                    .parse()
                    .map_err(|_| "--instances must be a number".to_string())?
            }
            "--workers" => {
                workers = Some(
                    o.value("--workers")?
                        .parse()
                        .map_err(|_| "--workers must be a number".to_string())?,
                )
            }
            // Boolean flag: consumes no value.
            "--harden" => harden = true,
            "--ilp-workers" => {
                ilp_workers = o
                    .value("--ilp-workers")?
                    .parse()
                    .map_err(|_| "--ilp-workers must be a number".to_string())?
            }
            "--topology" => topology = Some(o.value("--topology")?),
            "--topology-set" => topology_set = Some(o.value("--topology-set")?),
            "--message" => message = o.value("--message")?,
            "--rate" => {
                rate = o
                    .value("--rate")?
                    .parse()
                    .map_err(|_| "--rate must be a number".to_string())?
            }
            "--senders" => {
                senders = o
                    .value("--senders")?
                    .parse()
                    .map_err(|_| "--senders must be a number".to_string())?
            }
            other => return Err(format!("unknown option '{other}'")),
        }
    }

    match cmd.as_str() {
        "map" => Ok(Command::Map {
            model,
            index,
            seed,
            registry,
            metrics,
            harden,
            ilp_workers,
            topology,
            topology_set,
        }),
        "show" => Ok(Command::Show {
            registry: registry.ok_or("show requires --registry <FILE>")?,
            ppin,
        }),
        "fleet" => Ok(Command::Fleet {
            model,
            instances,
            seed,
            workers,
            metrics,
            harden,
            ilp_workers,
            topology,
            topology_set,
        }),
        "channel" => Ok(Command::Channel {
            model,
            index,
            seed,
            message,
            rate,
            senders,
        }),
        "verify" => Ok(Command::Verify { model, index, seed }),
        "help" | "--help" | "-h" => Ok(Command::Help),
        other => Err(format!("unknown command '{other}'")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_owned).collect()
    }

    #[test]
    fn parses_map_with_defaults() {
        let cmd = parse(&argv("map")).unwrap();
        assert_eq!(
            cmd,
            Command::Map {
                model: CpuModel::Platinum8259CL,
                index: 0,
                seed: 2022,
                registry: None,
                metrics: None,
                harden: false,
                ilp_workers: 1,
                topology: None,
                topology_set: None
            }
        );
    }

    #[test]
    fn harden_flag_parses_without_a_value() {
        let cmd = parse(&argv("map --harden --index 2")).unwrap();
        assert!(matches!(
            cmd,
            Command::Map {
                harden: true,
                index: 2,
                ..
            }
        ));
        let cmd = parse(&argv("fleet --harden --instances 3")).unwrap();
        assert!(matches!(
            cmd,
            Command::Fleet {
                harden: true,
                instances: 3,
                ..
            }
        ));
        assert!(matches!(
            parse(&argv("map")).unwrap(),
            Command::Map { harden: false, .. }
        ));
    }

    #[test]
    fn metrics_flag_parses_on_map_and_fleet() {
        let cmd = parse(&argv("map --metrics out.json")).unwrap();
        assert!(matches!(
            cmd,
            Command::Map { metrics: Some(ref f), .. } if f == "out.json"
        ));
        let cmd = parse(&argv("fleet --instances 2 --metrics m.json")).unwrap();
        assert!(matches!(
            cmd,
            Command::Fleet { metrics: Some(ref f), instances: 2, .. } if f == "m.json"
        ));
        assert!(parse(&argv("map --metrics")).is_err());
    }

    #[test]
    fn parses_full_channel_command() {
        let cmd = parse(&argv(
            "channel --model 8124m --index 3 --message hi --rate 4 --senders 2",
        ))
        .unwrap();
        assert_eq!(
            cmd,
            Command::Channel {
                model: CpuModel::Platinum8124M,
                index: 3,
                seed: 2022,
                message: "hi".into(),
                rate: 4.0,
                senders: 2
            }
        );
    }

    #[test]
    fn show_requires_registry() {
        assert!(parse(&argv("show")).is_err());
        assert!(parse(&argv("show --registry maps.json")).is_ok());
    }

    #[test]
    fn ppin_parses_hex() {
        let cmd = parse(&argv("show --registry r.json --ppin 0xABC")).unwrap();
        assert_eq!(
            cmd,
            Command::Show {
                registry: "r.json".into(),
                ppin: Some(0xABC)
            }
        );
    }

    #[test]
    fn fleet_parses_workers() {
        let cmd = parse(&argv("fleet --model 6354 --instances 4 --workers 3")).unwrap();
        assert_eq!(
            cmd,
            Command::Fleet {
                model: CpuModel::Gold6354,
                instances: 4,
                seed: 2022,
                workers: Some(3),
                metrics: None,
                harden: false,
                ilp_workers: 1,
                topology: None,
                topology_set: None
            }
        );
        assert!(matches!(
            parse(&argv("fleet")).unwrap(),
            Command::Fleet { workers: None, .. }
        ));
    }

    #[test]
    fn ilp_workers_flag_parses_on_map_and_fleet() {
        assert!(matches!(
            parse(&argv("map --ilp-workers 4")).unwrap(),
            Command::Map { ilp_workers: 4, .. }
        ));
        assert!(matches!(
            parse(&argv("fleet --ilp-workers 2 --workers 3")).unwrap(),
            Command::Fleet {
                ilp_workers: 2,
                workers: Some(3),
                ..
            }
        ));
        assert!(parse(&argv("map --ilp-workers nope")).is_err());
    }

    #[test]
    fn topology_flags_parse_on_map_and_fleet() {
        assert!(matches!(
            parse(&argv("map --topology skylake-xcc")).unwrap(),
            Command::Map { topology: Some(ref t), topology_set: None, .. } if t == "skylake-xcc"
        ));
        assert!(matches!(
            parse(&argv("map --topology-set zoo")).unwrap(),
            Command::Map { topology: None, topology_set: Some(ref s), .. } if s == "zoo"
        ));
        assert!(matches!(
            parse(&argv("fleet --topology-set zoo --instances 2")).unwrap(),
            Command::Fleet { topology_set: Some(ref s), instances: 2, .. } if s == "zoo"
        ));
        assert!(matches!(
            parse(&argv("fleet --topology custom.json")).unwrap(),
            Command::Fleet { topology: Some(ref t), .. } if t == "custom.json"
        ));
        assert!(parse(&argv("map --topology")).is_err());
        assert!(parse(&argv("map --topology-set")).is_err());
    }

    #[test]
    fn rejects_unknown_command_and_flag() {
        assert!(parse(&argv("frobnicate")).is_err());
        assert!(parse(&argv("map --what 3")).is_err());
        assert!(parse(&[]).is_err());
    }

    #[test]
    fn model_aliases() {
        assert_eq!(parse_model("ICX").unwrap(), CpuModel::Gold6354);
        assert_eq!(parse_model("8175").unwrap(), CpuModel::Platinum8175M);
        assert!(parse_model("9999").is_err());
    }
}
