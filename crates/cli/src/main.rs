//! `core-map` — command-line interface to the toolkit.
//!
//! Mirrors the workflow of the paper's released mapping tool: map a
//! machine once (root), store the result keyed by PPIN, and consume the
//! stored map later from unprivileged tooling.

// Tool code: aborting on a broken invariant is acceptable here (see audit policy);
// panic-discipline applies to the library crates.
#![allow(clippy::unwrap_used, clippy::expect_used)]

mod args;
mod commands;

use std::process::ExitCode;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match args::parse(&argv) {
        Ok(cmd) => match commands::run(cmd) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        },
        Err(msg) => {
            eprintln!("{msg}\n");
            eprintln!("{}", args::USAGE);
            ExitCode::from(2)
        }
    }
}
