//! Command implementations.

use std::error::Error;
use std::fs::File;
use std::io::{BufReader, BufWriter};
use std::sync::Arc;

use coremap_core::{verify, CoreMapper, MapQuality};
use coremap_fleet::{CloudFleet, CloudInstance, CpuModel, FleetRunner, MapRegistry, SurveyStats};
use coremap_mesh::{OsCoreId, Ppin, Topology};
use coremap_obs as obs;
use coremap_thermal::encoding::{bits_to_bytes, bytes_to_bits};
use coremap_thermal::power::ThermalNoise;
use coremap_thermal::{ChannelConfig, ThermalParams, ThermalSim};

use crate::args::{Command, USAGE};

type CliResult = Result<(), Box<dyn Error>>;

/// Dispatches a parsed command.
pub fn run(cmd: Command) -> CliResult {
    match cmd {
        Command::Help => {
            println!("{USAGE}");
            Ok(())
        }
        Command::Map {
            model,
            index,
            seed,
            registry,
            metrics,
            harden,
            ilp_workers,
            topology,
            topology_set,
        } => {
            let hypotheses = build_hypotheses(model, &topology, &topology_set)?;
            map(
                model,
                index,
                seed,
                registry,
                metrics,
                harden,
                ilp_workers,
                hypotheses,
            )
        }
        Command::Show { registry, ppin } => show(&registry, ppin),
        Command::Fleet {
            model,
            instances,
            seed,
            workers,
            metrics,
            harden,
            ilp_workers,
            topology,
            topology_set,
        } => {
            let hypotheses = build_hypotheses(model, &topology, &topology_set)?;
            fleet_survey(
                model,
                instances,
                seed,
                workers,
                metrics,
                harden,
                ilp_workers,
                hypotheses,
            )
        }
        Command::Channel {
            model,
            index,
            seed,
            message,
            rate,
            senders,
        } => channel(model, index, seed, &message, rate, senders),
        Command::Verify { model, index, seed } => verify_cmd(model, index, seed),
    }
}

/// Resolves one `--topology` operand: a builtin zoo name first, otherwise a
/// path to a `coremap-topology/v1` JSON file.
fn resolve_topology(spec: &str) -> Result<Topology, Box<dyn Error>> {
    if let Some(t) = Topology::builtin(spec) {
        return Ok(t.clone());
    }
    let json = std::fs::read_to_string(spec)
        .map_err(|e| format!("'{spec}' is neither a builtin topology nor a readable file: {e}"))?;
    Ok(Topology::from_json(&json)?)
}

/// Builds the hypothesis set from the `--topology`/`--topology-set` flags.
/// Empty means "paper-literal reconstruction on the model's own grid". The
/// `zoo` set lists the model's declared topology first so that perfect ties
/// (SKX vs CLX share a geometry) resolve to the declared die.
fn build_hypotheses(
    model: CpuModel,
    topology: &Option<String>,
    topology_set: &Option<String>,
) -> Result<Vec<Topology>, Box<dyn Error>> {
    match (topology, topology_set) {
        (Some(_), Some(_)) => Err("--topology and --topology-set are mutually exclusive".into()),
        (Some(one), None) => Ok(vec![resolve_topology(one)?]),
        (None, Some(set)) if set == "zoo" => {
            let declared = model.topology();
            let mut out = vec![declared.clone()];
            out.extend(
                Topology::builtins()
                    .iter()
                    .filter(|t| t.name() != declared.name())
                    .map(|t| (*t).clone()),
            );
            Ok(out)
        }
        (None, Some(set)) => set.split(',').map(|s| resolve_topology(s.trim())).collect(),
        (None, None) => Ok(Vec::new()),
    }
}

/// Prints the per-hypothesis verdict table of a selection run.
fn print_hypothesis_scores(quality: &MapQuality) {
    if quality.hypothesis_scores.is_empty() {
        return;
    }
    let eliminated = quality
        .hypothesis_scores
        .iter()
        .filter(|s| !s.survives())
        .count();
    println!(
        "topology hypotheses: {} tested, {eliminated} eliminated",
        quality.hypothesis_scores.len()
    );
    for s in &quality.hypothesis_scores {
        match &s.eliminated_by {
            Some(why) => println!("  {:<20} eliminated: {why}", s.name),
            None => println!(
                "  {:<20} fits (explains {:.0}% of paths, objective {:.1})",
                s.name,
                s.explained * 100.0,
                s.objective
            ),
        }
    }
    match &quality.winning_topology {
        Some(w) => println!("winning topology: {w}"),
        None => println!("winning topology: none (all hypotheses eliminated)"),
    }
}

fn mapper_for(harden: bool, ilp_workers: usize, hypotheses: Vec<Topology>) -> CoreMapper {
    let base = if harden {
        CoreMapper::hardened()
    } else {
        CoreMapper::new()
    };
    let mut cfg = base.config().clone();
    cfg.ilp_workers = ilp_workers.max(1);
    cfg.topology_hypotheses = hypotheses;
    CoreMapper::with_config(cfg)
}

fn map_instance(
    model: CpuModel,
    index: usize,
    seed: u64,
    harden: bool,
    ilp_workers: usize,
    hypotheses: Vec<Topology>,
) -> Result<(coremap_fleet::CloudInstance, coremap_core::CoreMap), Box<dyn Error>> {
    let fleet = CloudFleet::with_seed(seed);
    let instance = fleet.instance(model, index)?;
    eprintln!(
        "mapping {} instance #{index} (PPIN {})...",
        instance.model(),
        instance.ppin()
    );
    let mut machine = instance.boot();
    let (map, diag) =
        mapper_for(harden, ilp_workers, hypotheses).map_with_diagnostics(&mut machine)?;
    print_hypothesis_scores(&diag.quality);
    // The die template drives IMC/SYS tiles in renderings; it only applies
    // when the map still lives on the model's own grid (a selection run can
    // legitimately land on a different geometry).
    let map = if map.dim() == model.template().dim() {
        map.with_template(model.template())
    } else {
        map
    };
    Ok((instance, map))
}

/// Opens a metrics scope when `--metrics` was given: installs a fresh
/// registry for the duration of the returned guard; [`write_metrics`]
/// exports it afterwards.
fn metrics_scope(path: &Option<String>) -> Option<(Arc<obs::Registry>, obs::InstallGuard)> {
    path.as_ref().map(|_| {
        let reg = Arc::new(obs::Registry::new());
        let guard = obs::install(reg.clone());
        (reg, guard)
    })
}

/// Writes the registry's deterministic metrics as JSON to `path`.
fn write_metrics(reg: &obs::Registry, path: &str) -> CliResult {
    std::fs::write(path, reg.to_json(false))?;
    eprintln!("metrics written: {path}");
    Ok(())
}

#[allow(clippy::too_many_arguments)]
fn map(
    model: CpuModel,
    index: usize,
    seed: u64,
    registry: Option<String>,
    metrics: Option<String>,
    harden: bool,
    ilp_workers: usize,
    hypotheses: Vec<Topology>,
) -> CliResult {
    let scope = metrics_scope(&metrics);
    let (_, map) = map_instance(model, index, seed, harden, ilp_workers, hypotheses)?;
    println!("{}", map.render());
    if let Some(path) = registry {
        let mut reg = match File::open(&path) {
            Ok(f) => MapRegistry::load(BufReader::new(f))?,
            Err(_) => MapRegistry::new(),
        };
        reg.insert(map);
        reg.save(BufWriter::new(File::create(&path)?))?;
        println!("registry updated: {path} ({} chips)", reg.len());
    }
    if let (Some((reg, guard)), Some(path)) = (scope, metrics) {
        drop(guard);
        write_metrics(&reg, &path)?;
    }
    Ok(())
}

fn show(registry: &str, ppin: Option<u64>) -> CliResult {
    let reg = MapRegistry::load(BufReader::new(File::open(registry)?))?;
    if reg.is_empty() {
        println!("registry is empty");
        return Ok(());
    }
    for (chip, map) in reg.iter() {
        if let Some(wanted) = ppin {
            if chip.value() != wanted {
                continue;
            }
        }
        println!(
            "{chip}: {} cores / {} CHAs",
            map.core_count(),
            map.cha_count()
        );
        println!("{}", map.render());
    }
    if let Some(wanted) = ppin {
        if reg.get(Ppin::new(wanted)).is_none() {
            return Err(format!("no map stored for PPIN {wanted:#x}").into());
        }
    }
    Ok(())
}

#[allow(clippy::too_many_arguments)]
fn fleet_survey(
    model: CpuModel,
    instances: usize,
    seed: u64,
    workers: Option<usize>,
    metrics: Option<String>,
    harden: bool,
    ilp_workers: usize,
    hypotheses: Vec<Topology>,
) -> CliResult {
    let fleet = CloudFleet::with_seed(seed);
    let count = instances.min(model.paper_population());
    let runner = workers.map(FleetRunner::new).unwrap_or_default();
    eprintln!(
        "surveying {count} {model} instances on {} worker(s)...",
        runner.workers()
    );
    let scope = metrics_scope(&metrics);
    let outcome = runner.map_instances(
        &fleet,
        model,
        count,
        &mapper_for(harden, ilp_workers, hypotheses),
        CloudInstance::boot,
    );
    if let (Some((reg, guard)), Some(path)) = (scope, &metrics) {
        drop(guard);
        write_metrics(&reg, path)?;
    }
    for (instance, error) in outcome.failures() {
        eprintln!("  instance #{} failed to map: {error}", instance.index());
    }
    eprintln!("  {}", outcome.summary());
    let stats = SurveyStats::collect(&outcome);
    println!("{model}: {count} instances surveyed");
    println!(
        "  distinct location patterns: {}",
        stats.patterns.unique_patterns()
    );
    println!("  top frequencies: {:?}", stats.patterns.top_counts(4));
    println!("  distinct ID mappings: {}", stats.ids.unique_mappings());
    println!(
        "  exact relative matches vs ground truth: {}/{}",
        stats.verified, stats.mapped
    );
    if stats.failed > 0 {
        println!("  failed instances: {}", stats.failed);
    }
    Ok(())
}

fn channel(
    model: CpuModel,
    index: usize,
    seed: u64,
    message: &str,
    rate: f64,
    senders: usize,
) -> CliResult {
    if rate <= 0.0 {
        return Err("--rate must be positive".into());
    }
    let (instance, map) = map_instance(model, index, seed, false, 1, Vec::new())?;

    // Receiver with a vertical neighbour; extra senders by proximity.
    let (receiver, first_sender) = (0..map.core_count() as u16)
        .map(OsCoreId::new)
        .find_map(|rx| map.vertical_neighbor_cores(rx).first().map(|&tx| (rx, tx)))
        .ok_or("no vertically adjacent core pair on this map")?;
    let mut tx_set = vec![first_sender];
    let rc = map.coord_of_core(receiver);
    let mut others: Vec<(usize, OsCoreId)> = (0..map.core_count() as u16)
        .map(OsCoreId::new)
        .filter(|&c| c != receiver && c != first_sender)
        .map(|c| (map.coord_of_core(c).hop_distance(rc), c))
        .collect();
    others.sort();
    tx_set.extend(
        others
            .into_iter()
            .take(senders.saturating_sub(1))
            .map(|(_, c)| c),
    );

    let bits = bytes_to_bits(message.as_bytes());
    println!(
        "senders {:?} -> receiver cpu{} at {rate} bps ({} bits)...",
        tx_set.iter().map(|c| c.index()).collect::<Vec<_>>(),
        receiver.index(),
        bits.len()
    );
    let tiles = instance.floorplan().dim().tile_count();
    let mut sim = ThermalSim::new(instance.floorplan().clone(), ThermalParams::default(), seed)
        .with_noise(ThermalNoise::cloud(tiles));
    let report = ChannelConfig::new(tx_set, receiver, rate).transfer(&mut sim, &bits);
    println!(
        "received: {:?}",
        String::from_utf8_lossy(&bits_to_bytes(&report.decoded))
    );
    println!(
        "BER {:.4} ({} of {} bits), {:.0} s simulated",
        report.ber(),
        report.errors,
        report.bits,
        report.seconds
    );
    Ok(())
}

fn verify_cmd(model: CpuModel, index: usize, seed: u64) -> CliResult {
    let (instance, map) = map_instance(model, index, seed, false, 1, Vec::new())?;
    let truth = instance.floorplan();
    let positions: Vec<_> = truth.chas().map(|c| map.coord_of_cha(c)).collect();
    println!("{}", map.render());
    println!(
        "exact (mirror-tolerant): {}",
        verify::matches_exactly(&map, truth)
    );
    println!(
        "relative match:          {}",
        verify::matches_relative(&map, truth)
    );
    println!(
        "pairwise accuracy:       {:.4}",
        verify::pairwise_accuracy(&positions, truth)
    );
    Ok(())
}
