//! Integration tests for the CLI command layer (exercised through the
//! binary, since the command functions live in the binary crate).

// Test/bench harness: unwraps abort the harness, which is the desired failure mode.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::path::PathBuf;
use std::process::Command;

fn bin() -> PathBuf {
    // target/<profile>/core-map relative to this test binary.
    let mut p = std::env::current_exe().expect("test exe path");
    p.pop(); // deps/
    p.pop(); // <profile>/
    p.push("core-map");
    p
}

fn run(args: &[&str]) -> (bool, String, String) {
    let out = Command::new(bin())
        .args(args)
        .output()
        .expect("binary runs");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn help_prints_usage() {
    let (ok, stdout, _) = run(&["help"]);
    assert!(ok);
    assert!(stdout.contains("USAGE"));
    assert!(stdout.contains("channel"));
}

#[test]
fn unknown_command_exits_nonzero_with_usage() {
    let (ok, _, stderr) = run(&["frobnicate"]);
    assert!(!ok);
    assert!(stderr.contains("unknown command"));
    assert!(stderr.contains("USAGE"));
}

#[test]
fn map_verify_and_registry_round_trip() {
    let dir = std::env::temp_dir().join(format!("coremap-cli-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let registry = dir.join("maps.json");
    let registry_str = registry.to_str().expect("utf8 path");

    let (ok, stdout, stderr) = run(&["map", "--model", "8124m", "--registry", registry_str]);
    assert!(ok, "map failed: {stderr}");
    assert!(stdout.contains("IMC"), "rendered grid expected: {stdout}");
    assert!(registry.exists());

    let (ok, stdout, _) = run(&["show", "--registry", registry_str]);
    assert!(ok);
    assert!(stdout.contains("18 cores"));

    let (ok, _, stderr) = run(&["show", "--registry", registry_str, "--ppin", "0xdead"]);
    assert!(!ok, "unknown PPIN must fail");
    assert!(stderr.contains("no map stored"));

    let (ok, stdout, _) = run(&["verify", "--model", "8124m"]);
    assert!(ok);
    assert!(stdout.contains("pairwise accuracy"));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn channel_transfers_a_short_message() {
    let (ok, stdout, stderr) = run(&["channel", "--message", "ok", "--rate", "4"]);
    assert!(ok, "channel failed: {stderr}");
    assert!(stdout.contains("received:"), "{stdout}");
    assert!(stdout.contains("BER"));
}
