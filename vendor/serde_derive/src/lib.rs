//! Vendored `#[derive(Serialize)]` / `#[derive(Deserialize)]` macros.
//!
//! Implemented directly over `proc_macro::TokenTree` (the build environment
//! has no `syn`/`quote`). The macros parse the deriving item's shape —
//! struct (named / tuple / unit) or enum (unit / tuple / struct variants,
//! externally tagged) — and emit `to_value`/`from_value` impls against the
//! vendored `serde` crate's `Value` data model.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
enum Shape {
    NamedStruct(Vec<String>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    shape: VariantShape,
}

#[derive(Debug)]
enum VariantShape {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

#[derive(Debug)]
struct Input {
    name: String,
    generics: Vec<String>,
    shape: Shape,
}

/// Derives the vendored `serde::Serialize` trait.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let input = parse_input(input);
    gen_serialize(&input)
        .parse()
        .expect("generated impl parses")
}

/// Derives the vendored `serde::Deserialize` trait.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let input = parse_input(input);
    gen_deserialize(&input)
        .parse()
        .expect("generated impl parses")
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_input(input: TokenStream) -> Input {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    // Skip attributes (`#[...]`) and visibility (`pub`, `pub(...)`).
    let kind = loop {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                i += 2; // '#' + bracket group
            }
            TokenTree::Ident(id) if id.to_string() == "pub" => {
                i += 1;
                if matches!(&tokens[i], TokenTree::Group(g) if g.delimiter() == Delimiter::Parenthesis)
                {
                    i += 1;
                }
            }
            TokenTree::Ident(id) if id.to_string() == "struct" || id.to_string() == "enum" => {
                break id.to_string();
            }
            other => panic!("unexpected token before item keyword: {other}"),
        }
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("expected item name, got {other}"),
    };
    i += 1;

    // Generic parameters: collect the leading ident of each `<...>` segment.
    let mut generics = Vec::new();
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            i += 1;
            let mut depth = 1usize;
            let mut expect_param = true;
            while depth > 0 {
                match &tokens[i] {
                    TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                    TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                    TokenTree::Punct(p) if p.as_char() == ',' && depth == 1 => {
                        expect_param = true;
                    }
                    TokenTree::Ident(id) if depth == 1 && expect_param => {
                        generics.push(id.to_string());
                        expect_param = false;
                    }
                    _ => {}
                }
                i += 1;
            }
        }
    }

    let shape = if kind == "struct" {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::NamedStruct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::TupleStruct(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::UnitStruct,
            other => panic!("unsupported struct body: {other:?}"),
        }
    } else {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Enum(parse_variants(g.stream()))
            }
            other => panic!("unsupported enum body: {other:?}"),
        }
    };

    Input {
        name,
        generics,
        shape,
    }
}

/// Parses `name: Type, ...` field lists, skipping attributes and
/// visibility; types are skipped with angle-bracket depth tracking.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => i += 2,
            TokenTree::Ident(id) if id.to_string() == "pub" => {
                i += 1;
                if matches!(&tokens[i], TokenTree::Group(g) if g.delimiter() == Delimiter::Parenthesis)
                {
                    i += 1;
                }
            }
            TokenTree::Ident(id) => {
                fields.push(id.to_string());
                i += 1;
                assert!(
                    matches!(&tokens[i], TokenTree::Punct(p) if p.as_char() == ':'),
                    "expected `:` after field name"
                );
                i += 1;
                i = skip_type(&tokens, i);
                if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
                    i += 1;
                }
            }
            other => panic!("unexpected token in field list: {other}"),
        }
    }
    fields
}

/// Advances past one type, stopping at a top-level `,` or end of tokens.
fn skip_type(tokens: &[TokenTree], mut i: usize) -> usize {
    let mut angle_depth = 0usize;
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => break,
            _ => {}
        }
        i += 1;
    }
    i
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut count = 0;
    let mut i = 0;
    while i < tokens.len() {
        // Skip attributes / visibility on the field, then one type.
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                i += 2;
                continue;
            }
            TokenTree::Ident(id) if id.to_string() == "pub" => {
                i += 1;
                if matches!(tokens.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    i += 1;
                }
                continue;
            }
            _ => {}
        }
        count += 1;
        i = skip_type(&tokens, i);
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                i += 2;
                continue;
            }
            TokenTree::Ident(id) => {
                let name = id.to_string();
                i += 1;
                let shape = match tokens.get(i) {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                        i += 1;
                        VariantShape::Named(parse_named_fields(g.stream()))
                    }
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                        i += 1;
                        VariantShape::Tuple(count_tuple_fields(g.stream()))
                    }
                    _ => VariantShape::Unit,
                };
                // Skip an explicit discriminant (`= expr`) if present.
                while i < tokens.len()
                    && !matches!(&tokens[i], TokenTree::Punct(p) if p.as_char() == ',')
                {
                    i += 1;
                }
                i += 1; // consume the comma (or run past the end)
                variants.push(Variant { name, shape });
            }
            other => panic!("unexpected token in enum body: {other}"),
        }
    }
    variants
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn generics_split(input: &Input, bound: &str) -> (String, String) {
    if input.generics.is_empty() {
        return (String::new(), String::new());
    }
    let impl_generics = format!(
        "<{}>",
        input
            .generics
            .iter()
            .map(|g| format!("{g}: {bound}"))
            .collect::<Vec<_>>()
            .join(", ")
    );
    let ty_generics = format!("<{}>", input.generics.join(", "));
    (impl_generics, ty_generics)
}

fn gen_serialize(input: &Input) -> String {
    let (impl_generics, ty_generics) = generics_split(input, "::serde::Serialize");
    let name = &input.name;
    let body = match &input.shape {
        Shape::NamedStruct(fields) => {
            let entries = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), \
                         ::serde::Serialize::to_value(&self.{f}))"
                    )
                })
                .collect::<Vec<_>>()
                .join(", ");
            format!("::serde::Value::Map(::std::vec![{entries}])")
        }
        Shape::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)".to_owned(),
        Shape::TupleStruct(n) => {
            let items = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect::<Vec<_>>()
                .join(", ");
            format!("::serde::Value::Seq(::std::vec![{items}])")
        }
        Shape::UnitStruct => "::serde::Value::Null".to_owned(),
        Shape::Enum(variants) => {
            let arms = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    match &v.shape {
                        VariantShape::Unit => format!(
                            "Self::{vname} => ::serde::Value::Str(\
                             ::std::string::String::from(\"{vname}\")),"
                        ),
                        VariantShape::Tuple(1) => format!(
                            "Self::{vname}(__f0) => ::serde::Value::Map(::std::vec![\
                             (::std::string::String::from(\"{vname}\"), \
                             ::serde::Serialize::to_value(__f0))]),"
                        ),
                        VariantShape::Tuple(n) => {
                            let pats = (0..*n)
                                .map(|i| format!("__f{i}"))
                                .collect::<Vec<_>>()
                                .join(", ");
                            let items = (0..*n)
                                .map(|i| format!("::serde::Serialize::to_value(__f{i})"))
                                .collect::<Vec<_>>()
                                .join(", ");
                            format!(
                                "Self::{vname}({pats}) => ::serde::Value::Map(::std::vec![\
                                 (::std::string::String::from(\"{vname}\"), \
                                 ::serde::Value::Seq(::std::vec![{items}]))]),"
                            )
                        }
                        VariantShape::Named(fields) => {
                            let pats = fields.join(", ");
                            let entries = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(::std::string::String::from(\"{f}\"), \
                                         ::serde::Serialize::to_value({f}))"
                                    )
                                })
                                .collect::<Vec<_>>()
                                .join(", ");
                            format!(
                                "Self::{vname} {{ {pats} }} => \
                                 ::serde::Value::Map(::std::vec![\
                                 (::std::string::String::from(\"{vname}\"), \
                                 ::serde::Value::Map(::std::vec![{entries}]))]),"
                            )
                        }
                    }
                })
                .collect::<Vec<_>>()
                .join("\n");
            format!("match self {{ {arms} }}")
        }
    };
    format!(
        "#[automatically_derived]\n\
         #[allow(clippy::all)]\n\
         impl{impl_generics} ::serde::Serialize for {name}{ty_generics} {{\n\
             fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

fn gen_deserialize(input: &Input) -> String {
    let (impl_generics, ty_generics) = generics_split(input, "::serde::Deserialize");
    let name = &input.name;
    let body = match &input.shape {
        Shape::NamedStruct(fields) => {
            let inits = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_value(\
                         ::serde::get_field(__entries, \"{f}\")?)?,"
                    )
                })
                .collect::<Vec<_>>()
                .join("\n");
            format!(
                "let __entries = __value.as_map().ok_or_else(|| \
                 ::serde::Error::custom(\"expected map for struct `{name}`\"))?;\n\
                 ::std::result::Result::Ok(Self {{ {inits} }})"
            )
        }
        Shape::TupleStruct(1) => {
            "::std::result::Result::Ok(Self(::serde::Deserialize::from_value(__value)?))".to_owned()
        }
        Shape::TupleStruct(n) => {
            let pats = (0..*n)
                .map(|i| format!("__v{i}"))
                .collect::<Vec<_>>()
                .join(", ");
            let inits = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(__v{i})?"))
                .collect::<Vec<_>>()
                .join(", ");
            format!(
                "match __value.as_seq() {{\n\
                     ::std::option::Option::Some([{pats}]) => \
                     ::std::result::Result::Ok(Self({inits})),\n\
                     _ => ::std::result::Result::Err(::serde::Error::custom(\
                     \"expected {n}-element sequence for `{name}`\")),\n\
                 }}"
            )
        }
        Shape::UnitStruct => "::std::result::Result::Ok(Self)".to_owned(),
        Shape::Enum(variants) => gen_deserialize_enum(name, variants),
    };
    format!(
        "#[automatically_derived]\n\
         #[allow(clippy::all)]\n\
         impl{impl_generics} ::serde::Deserialize for {name}{ty_generics} {{\n\
             fn from_value(__value: &::serde::Value) -> \
             ::std::result::Result<Self, ::serde::Error> {{\n{body}\n}}\n\
         }}"
    )
}

fn gen_deserialize_enum(name: &str, variants: &[Variant]) -> String {
    let unit_arms = variants
        .iter()
        .filter(|v| matches!(v.shape, VariantShape::Unit))
        .map(|v| format!("\"{0}\" => ::std::result::Result::Ok(Self::{0}),", v.name))
        .collect::<Vec<_>>()
        .join("\n");
    let data_arms = variants
        .iter()
        .filter_map(|v| {
            let vname = &v.name;
            match &v.shape {
                VariantShape::Unit => None,
                VariantShape::Tuple(1) => Some(format!(
                    "\"{vname}\" => ::std::result::Result::Ok(\
                     Self::{vname}(::serde::Deserialize::from_value(__inner)?)),"
                )),
                VariantShape::Tuple(n) => {
                    let pats = (0..*n)
                        .map(|i| format!("__v{i}"))
                        .collect::<Vec<_>>()
                        .join(", ");
                    let inits = (0..*n)
                        .map(|i| format!("::serde::Deserialize::from_value(__v{i})?"))
                        .collect::<Vec<_>>()
                        .join(", ");
                    Some(format!(
                        "\"{vname}\" => match __inner.as_seq() {{\n\
                             ::std::option::Option::Some([{pats}]) => \
                             ::std::result::Result::Ok(Self::{vname}({inits})),\n\
                             _ => ::std::result::Result::Err(::serde::Error::custom(\
                             \"expected {n}-element sequence for variant `{vname}`\")),\n\
                         }},"
                    ))
                }
                VariantShape::Named(fields) => {
                    let inits = fields
                        .iter()
                        .map(|f| {
                            format!(
                                "{f}: ::serde::Deserialize::from_value(\
                                 ::serde::get_field(__fields, \"{f}\")?)?,"
                            )
                        })
                        .collect::<Vec<_>>()
                        .join("\n");
                    Some(format!(
                        "\"{vname}\" => {{\n\
                             let __fields = __inner.as_map().ok_or_else(|| \
                             ::serde::Error::custom(\
                             \"expected map for variant `{vname}`\"))?;\n\
                             ::std::result::Result::Ok(Self::{vname} {{ {inits} }})\n\
                         }},"
                    ))
                }
            }
        })
        .collect::<Vec<_>>()
        .join("\n");

    let mut arms = String::new();
    if !unit_arms.is_empty() {
        arms.push_str(&format!(
            "::serde::Value::Str(__s) => match __s.as_str() {{\n{unit_arms}\n\
             __other => ::std::result::Result::Err(::serde::Error::custom(\
             ::std::format!(\"unknown variant `{{__other}}` of `{name}`\"))),\n}},\n"
        ));
    }
    if !data_arms.is_empty() {
        arms.push_str(&format!(
            "::serde::Value::Map(__entries) if __entries.len() == 1 => {{\n\
                 let (__tag, __inner) = (&__entries[0].0, &__entries[0].1);\n\
                 match __tag.as_str() {{\n{data_arms}\n\
                 __other => ::std::result::Result::Err(::serde::Error::custom(\
                 ::std::format!(\"unknown variant `{{__other}}` of `{name}`\"))),\n}}\n}},\n"
        ));
    }
    format!(
        "match __value {{\n{arms}\
         _ => ::std::result::Result::Err(::serde::Error::custom(\
         \"unexpected value for enum `{name}`\")),\n}}"
    )
}
