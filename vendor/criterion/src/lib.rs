//! Vendored single-shot stand-in for the `criterion` benchmark harness.
//!
//! The build environment has no registry access, so this crate provides
//! the API surface the workspace's benches use (`Criterion`,
//! `benchmark_group`, `sample_size`, `throughput`, `bench_function`,
//! `Bencher::iter`, the `criterion_group!`/`criterion_main!` macros) with a
//! deliberately minimal implementation: each benchmark body runs **once**
//! and its wall-clock time is printed. That keeps `cargo test` (which
//! executes `harness = false` bench targets) fast while preserving the
//! compile-time contract and a useful smoke signal.

use std::time::{Duration, Instant};

/// Re-export matching `criterion::black_box`.
pub use std::hint::black_box;

/// The benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        let _ = self;
        BenchmarkGroup {
            name: name.to_owned(),
            throughput: None,
            _criterion: std::marker::PhantomData,
        }
    }

    /// Runs a stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        run_one(name, None, f);
        self
    }
}

/// Units processed per iteration, for derived rates.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements per iteration.
    Elements(u64),
    /// Bytes per iteration.
    Bytes(u64),
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    _criterion: std::marker::PhantomData<&'a mut Criterion>,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the stub always runs one iteration.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Sets the per-iteration throughput used in the report line.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        run_one(&format!("{}/{name}", self.name), self.throughput, f);
        self
    }

    /// Ends the group (no-op in the stub).
    pub fn finish(self) {}
}

/// Passed to each benchmark body; [`Bencher::iter`] times the closure.
#[derive(Debug, Default)]
pub struct Bencher {
    elapsed: Option<Duration>,
}

impl Bencher {
    /// Runs `body` once and records its wall-clock time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut body: F) {
        let start = Instant::now();
        black_box(body());
        self.elapsed = Some(start.elapsed());
    }
}

fn run_one<F: FnOnce(&mut Bencher)>(label: &str, throughput: Option<Throughput>, f: F) {
    let mut bencher = Bencher::default();
    f(&mut bencher);
    match bencher.elapsed {
        Some(elapsed) => {
            let rate = throughput.map(|t| match t {
                Throughput::Elements(n) => {
                    format!(
                        " ({:.0} elem/s)",
                        n as f64 / elapsed.as_secs_f64().max(1e-9)
                    )
                }
                Throughput::Bytes(n) => {
                    format!(" ({:.0} B/s)", n as f64 / elapsed.as_secs_f64().max(1e-9))
                }
            });
            println!(
                "bench {label}: {elapsed:?} [single-shot]{}",
                rate.unwrap_or_default()
            );
        }
        None => println!("bench {label}: no iteration recorded"),
    }
}

/// Declares a function running a list of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
