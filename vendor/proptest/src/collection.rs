//! Collection strategies: `vec` and `btree_set`.

use std::collections::BTreeSet;
use std::ops::{Range, RangeInclusive};

use rand::Rng;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// A target size range for a generated collection.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    start: usize,
    /// Exclusive upper bound.
    end: usize,
}

impl SizeRange {
    fn sample(&self, rng: &mut TestRng) -> usize {
        if self.start >= self.end {
            self.start
        } else {
            rng.gen_range(self.start..self.end)
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        Self {
            start: r.start,
            end: r.end,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        Self {
            start: *r.start(),
            end: r.end().saturating_add(1),
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self {
            start: n,
            end: n.saturating_add(1),
        }
    }
}

/// The strategy returned by [`vec`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.size.sample(rng);
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

/// A strategy for vectors with element strategy `element` and a length
/// drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// The strategy returned by [`btree_set`].
pub struct BTreeSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for BTreeSetStrategy<S>
where
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
        let target = self.size.sample(rng);
        let mut set = BTreeSet::new();
        // The element domain may be barely larger than the target size, so
        // bound the retry budget instead of looping forever.
        let mut attempts = 0;
        while set.len() < target && attempts < target * 10 + 100 {
            set.insert(self.element.sample(rng));
            attempts += 1;
        }
        set
    }
}

/// A strategy for ordered sets with element strategy `element` and a size
/// drawn from `size` (best-effort if the element domain is small).
pub fn btree_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
where
    S::Value: Ord,
{
    BTreeSetStrategy {
        element,
        size: size.into(),
    }
}
