//! Vendored, offline subset of the `proptest` API.
//!
//! Supports the surface this workspace's property tests use: the
//! [`proptest!`] macro (with `#![proptest_config(...)]`), range / tuple /
//! [`Just`] / mapped / flat-mapped / union strategies, `any::<T>()`,
//! `prop::collection::{vec, btree_set}`, `prop_assert!`-family macros and
//! `prop_assume!`. Shrinking is not implemented — a failing case panics
//! with the case number and message; cases are deterministic per test name,
//! so failures reproduce exactly on re-run.

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

/// The glob-imported prelude, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// The `prop::` module path used by `prop::collection::vec(...)`.
    pub mod prop {
        pub use crate::collection;
        pub use crate::strategy;
    }
}

/// Declares property tests over strategies.
///
/// Each `fn name(pat in strategy, ...) { body }` item expands to a
/// `#[test]` running `body` against `ProptestConfig::cases` sampled inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr)) => {};
    (($config:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            $crate::test_runner::run_cases(
                &$config,
                stringify!($name),
                |__proptest_rng| {
                    $(
                        let $arg =
                            $crate::strategy::Strategy::sample(&($strategy), __proptest_rng);
                    )+
                    let __proptest_result: ::std::result::Result<
                        (),
                        $crate::test_runner::TestCaseError,
                    > = (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    __proptest_result
                },
            );
        }
        $crate::__proptest_items! { ($config) $($rest)* }
    };
}

/// Asserts a condition inside a [`proptest!`] body, failing the case
/// (not panicking directly) so the runner can report the case number.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(::std::format!($($fmt)+)),
            );
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                ::std::format!("assertion failed: `{:?}` != `{:?}`", __l, __r),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                ::std::format!(
                    "assertion failed: `{:?}` != `{:?}`: {}",
                    __l,
                    __r,
                    ::std::format!($($fmt)+)
                ),
            ));
        }
    }};
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if *__l == *__r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                ::std::format!("assertion failed: `{:?}` == `{:?}`", __l, __r),
            ));
        }
    }};
}

/// Rejects the current case (resampled, not counted as a failure).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                ::std::string::String::from(stringify!($cond)),
            ));
        }
    };
}

/// Builds a union strategy from (optionally weighted) alternatives.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strategy))),+
        ])
    };
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $((1u32, $crate::strategy::Strategy::boxed($strategy))),+
        ])
    };
}
