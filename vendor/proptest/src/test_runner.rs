//! The case runner behind the [`proptest!`](crate::proptest) macro.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// The RNG driving strategy sampling.
pub type TestRng = ChaCha8Rng;

/// Per-test configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of passing cases required.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// Why one sampled case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// An assertion failed; the whole test fails.
    Fail(String),
    /// `prop_assume!` rejected the inputs; the case is resampled.
    Reject(String),
}

fn fnv1a(name: &str) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for byte in name.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// Runs `case` until `config.cases` passes, panicking on the first failure.
///
/// The RNG is seeded from the test name, so runs are deterministic and a
/// failure reproduces exactly on re-run.
///
/// # Panics
///
/// Panics when a case fails or when `prop_assume!` rejects too many cases.
pub fn run_cases<F>(config: &ProptestConfig, name: &str, mut case: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    let mut rng = TestRng::seed_from_u64(fnv1a(name));
    let mut passed: u32 = 0;
    let mut rejected: u32 = 0;
    let reject_budget = config.cases.saturating_mul(16).max(1024);
    while passed < config.cases {
        match case(&mut rng) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject(cond)) => {
                rejected += 1;
                assert!(
                    rejected <= reject_budget,
                    "proptest `{name}`: too many cases rejected by prop_assume!({cond})"
                );
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!("proptest `{name}` failed at case {passed}: {msg}")
            }
        }
    }
}
