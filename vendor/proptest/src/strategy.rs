//! Strategies: deterministic samplers of test inputs.

use std::ops::{Range, RangeInclusive};

use rand::Rng;

use crate::test_runner::TestRng;

/// A source of values of one type, sampled from a [`TestRng`].
///
/// Unlike upstream proptest there is no shrinking: a strategy is just a
/// deterministic sampler.
pub trait Strategy {
    /// The type of value produced.
    type Value;

    /// Samples one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps sampled values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, f }
    }

    /// Builds a dependent strategy from each sampled value.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { source: self, f }
    }

    /// Type-erases the strategy (needed by [`prop_oneof!`](crate::prop_oneof)).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// A boxed, type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        self.0.sample(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.sample(rng))
    }
}

/// The result of [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    source: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn sample(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.source.sample(rng)).sample(rng)
    }
}

/// A weighted union of same-valued strategies
/// (built by [`prop_oneof!`](crate::prop_oneof)).
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
}

impl<T> Union<T> {
    /// Creates a union from weighted boxed strategies.
    ///
    /// # Panics
    ///
    /// Panics if `arms` is empty or all weights are zero.
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        let total: u64 = arms.iter().map(|(w, _)| u64::from(*w)).sum();
        assert!(total > 0, "prop_oneof! needs at least one positive weight");
        Self { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        let total: u64 = self.arms.iter().map(|(w, _)| u64::from(*w)).sum();
        let mut pick = rng.gen_range(0..total);
        for (weight, strategy) in &self.arms {
            let weight = u64::from(*weight);
            if pick < weight {
                return strategy.sample(rng);
            }
            pick -= weight;
        }
        unreachable!("weights sum to total")
    }
}

// Blanket impls (rather than per-type macros) so untyped range literals
// like `0..7` get their integer type inferred from surrounding usage.
impl<T: rand::distributions::SampleUniform + Clone> Strategy for Range<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        rng.gen_range(self.clone())
    }
}

impl<T: rand::distributions::SampleUniform + Clone> Strategy for RangeInclusive<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        rng.gen_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
}
