//! `any::<T>()`: whole-domain strategies for primitive types.

use std::marker::PhantomData;

use rand::Rng;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Sized {
    /// Samples an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.gen()
            }
        }
    )*};
}

impl_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool, f32, f64);

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// A strategy covering `T`'s whole domain.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}
