//! Distributions: the [`Standard`] distribution plus uniform range
//! sampling used by [`Rng::gen_range`](crate::Rng::gen_range).

use std::ops::{Range, RangeInclusive};

use crate::RngCore;

/// A distribution of values of type `T`.
pub trait Distribution<T> {
    /// Samples one value.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// The "obvious" uniform distribution over a type's whole domain
/// (`[0, 1)` for floats).
#[derive(Debug, Clone, Copy, Default)]
pub struct Standard;

macro_rules! impl_standard_uint {
    ($($t:ty),*) => {$(
        impl Distribution<$t> for Standard {
            fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Distribution<u128> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u128 {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl Distribution<i128> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> i128 {
        <Standard as Distribution<u128>>::sample(self, rng) as i128
    }
}

impl Distribution<bool> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u32() & 1 == 1
    }
}

impl Distribution<f64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        unit_f64(rng)
    }
}

impl Distribution<f32> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        unit_f64(rng) as f32
    }
}

/// Uniform sample from `[0, 1)` with 53 bits of precision.
pub(crate) fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types [`Rng::gen_range`](crate::Rng::gen_range) can sample uniformly.
///
/// Kept as a single trait with per-type sampling methods so that
/// [`SampleRange`] can be *blanket*-implemented for `Range<T>` /
/// `RangeInclusive<T>` — one applicable impl is what lets the compiler
/// infer the integer type of an untyped range literal from surrounding
/// usage, exactly like upstream rand.
pub trait SampleUniform: Sized {
    /// Samples uniformly from `[low, high)`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;

    /// Samples uniformly from `[low, high]`.
    ///
    /// # Panics
    ///
    /// Panics if `low > high`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

/// A range form accepted by [`Rng::gen_range`](crate::Rng::gen_range).
pub trait SampleRange<T: SampleUniform> {
    /// Samples one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (low, high) = self.into_inner();
        T::sample_inclusive(rng, low, high)
    }
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "cannot sample empty range");
                let span = (high as i128 - low as i128) as u128;
                let v = u128::from(rng.next_u64()) % span;
                (low as i128 + v as i128) as $t
            }

            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low <= high, "cannot sample empty range");
                let span = (high as i128 - low as i128) as u128 + 1;
                let v = u128::from(rng.next_u64()) % span;
                (low as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "cannot sample empty range");
                low + (unit_f64(rng) as $t) * (high - low)
            }

            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low <= high, "cannot sample empty range");
                low + (unit_f64(rng) as $t) * (high - low)
            }
        }
    )*};
}

impl_sample_uniform_float!(f32, f64);
