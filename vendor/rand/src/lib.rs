//! Vendored, dependency-free subset of the `rand` 0.8 API.
//!
//! The build environment has no access to a crates.io registry, so the
//! workspace vendors the exact surface it consumes: [`RngCore`],
//! [`SeedableRng`], [`Rng`] (with `gen`, `gen_range`, `gen_bool`), the
//! [`distributions::Standard`] distribution and
//! [`seq::SliceRandom::shuffle`]. Algorithms are simple and deterministic;
//! bit-compatibility with upstream `rand` is *not* a goal — every consumer
//! in this workspace only requires self-consistent determinism for a fixed
//! seed.

pub mod distributions;
pub mod seq;

use distributions::{Distribution, SampleRange, SampleUniform, Standard};

/// The core of a random number generator: uniformly distributed raw words.
pub trait RngCore {
    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32;

    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator that can be instantiated from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// The seed array type.
    type Seed: Default + AsMut<[u8]>;

    /// Creates the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` into a full seed via SplitMix64 and constructs the
    /// generator from it.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

/// User-facing sampling helpers, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of any type the [`Standard`] distribution supports.
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
    {
        Standard.sample(self)
    }

    /// Samples uniformly from `range` (half-open or inclusive).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        distributions::unit_f64(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}
