//! Vendored, dependency-free subset of the `serde` API.
//!
//! The build environment has no registry access, so the workspace vendors a
//! simplified serde: instead of the visitor-based `Serializer`/
//! `Deserializer` machinery, types convert to and from a self-describing
//! [`Value`] tree. The derive macros (`#[derive(Serialize, Deserialize)]`,
//! re-exported from the vendored `serde_derive` crate under the `derive`
//! feature) generate `Value` conversions that follow serde's external
//! enum-tagging and struct-as-map conventions, so the JSON produced by the
//! vendored `serde_json` matches what upstream serde would emit for the
//! types in this workspace.

use std::collections::BTreeMap;
use std::fmt;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// The self-describing intermediate data model.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A non-negative integer.
    U64(u64),
    /// A negative integer.
    I64(i64),
    /// A floating-point number.
    F64(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Seq(Vec<Value>),
    /// An ordered map with string keys (struct fields, map entries,
    /// enum tags).
    Map(Vec<(String, Value)>),
}

impl Value {
    /// The map entries, if this is a map.
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(entries) => Some(entries),
            _ => None,
        }
    }

    /// The sequence elements, if this is a sequence.
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(items) => Some(items),
            _ => None,
        }
    }
}

/// A deserialization error.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Creates an error with a custom message.
    pub fn custom(msg: impl Into<String>) -> Self {
        Self { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for Error {}

/// Looks up a struct field by name in a map value's entries.
///
/// # Errors
///
/// Returns an error naming the missing field.
pub fn get_field<'a>(entries: &'a [(String, Value)], name: &str) -> Result<&'a Value, Error> {
    entries
        .iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v)
        .ok_or_else(|| Error::custom(format!("missing field `{name}`")))
}

/// A type convertible into the [`Value`] data model.
pub trait Serialize {
    /// Converts `self` into a [`Value`].
    fn to_value(&self) -> Value;
}

/// A type reconstructible from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Reconstructs `Self` from a [`Value`].
    ///
    /// # Errors
    ///
    /// Returns an [`Error`] when the value's shape does not match.
    fn from_value(value: &Value) -> Result<Self, Error>;
}

fn type_error<T>(expected: &str, got: &Value) -> Result<T, Error> {
    Err(Error::custom(format!("expected {expected}, got {got:?}")))
}

macro_rules! impl_serde_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }

        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let n = match value {
                    Value::U64(n) => *n,
                    Value::I64(n) if *n >= 0 => *n as u64,
                    // Map keys arrive stringified ("1234": {...}).
                    Value::Str(s) => s
                        .parse::<u64>()
                        .map_err(|_| Error::custom(format!("invalid integer `{s}`")))?,
                    other => return type_error("unsigned integer", other),
                };
                <$t>::try_from(n)
                    .map_err(|_| Error::custom(format!("integer {n} out of range")))
            }
        }
    )*};
}

impl_serde_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                if *self >= 0 {
                    Value::U64(*self as u64)
                } else {
                    Value::I64(*self as i64)
                }
            }
        }

        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let n = match value {
                    Value::U64(n) => i64::try_from(*n)
                        .map_err(|_| Error::custom(format!("integer {n} out of range")))?,
                    Value::I64(n) => *n,
                    Value::Str(s) => s
                        .parse::<i64>()
                        .map_err(|_| Error::custom(format!("invalid integer `{s}`")))?,
                    other => return type_error("integer", other),
                };
                <$t>::try_from(n)
                    .map_err(|_| Error::custom(format!("integer {n} out of range")))
            }
        }
    )*};
}

impl_serde_int!(i8, i16, i32, i64, isize);

macro_rules! impl_serde_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::F64(*self as f64)
            }
        }

        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::F64(x) => Ok(*x as $t),
                    Value::U64(n) => Ok(*n as $t),
                    Value::I64(n) => Ok(*n as $t),
                    other => type_error("number", other),
                }
            }
        }
    )*};
}

impl_serde_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => type_error("boolean", other),
        }
    }
}

impl Serialize for () {
    fn to_value(&self) -> Value {
        Value::Null
    }
}

impl Deserialize for () {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(()),
            other => type_error("null", other),
        }
    }
}

// External tagging, matching upstream serde: `{"Ok": v}` / `{"Err": e}`.
impl<T: Serialize, E: Serialize> Serialize for std::result::Result<T, E> {
    fn to_value(&self) -> Value {
        match self {
            Ok(v) => Value::Map(vec![("Ok".to_owned(), v.to_value())]),
            Err(e) => Value::Map(vec![("Err".to_owned(), e.to_value())]),
        }
    }
}

impl<T: Deserialize, E: Deserialize> Deserialize for std::result::Result<T, E> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Map(entries) if entries.len() == 1 => match entries[0].0.as_str() {
                "Ok" => Ok(Ok(T::from_value(&entries[0].1)?)),
                "Err" => Ok(Err(E::from_value(&entries[0].1)?)),
                other => Err(Error::custom(format!(
                    "expected Ok or Err variant, found {other:?}"
                ))),
            },
            other => type_error("single-entry Result map", other),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            other => type_error("string", other),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_value(other)?)),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            other => type_error("sequence", other),
        }
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let items: Vec<T> = Vec::from_value(value)?;
        let len = items.len();
        items
            .try_into()
            .map_err(|_| Error::custom(format!("expected array of length {N}, got {len}")))
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Seq(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value.as_seq() {
            Some([a, b]) => Ok((A::from_value(a)?, B::from_value(b)?)),
            _ => type_error("2-element sequence", value),
        }
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Seq(vec![
            self.0.to_value(),
            self.1.to_value(),
            self.2.to_value(),
        ])
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value.as_seq() {
            Some([a, b, c]) => Ok((A::from_value(a)?, B::from_value(b)?, C::from_value(c)?)),
            _ => type_error("3-element sequence", value),
        }
    }
}

/// Serializes a map key the way serde_json does: strings stay strings,
/// integers are stringified.
fn key_to_string(key: &Value) -> String {
    match key {
        Value::Str(s) => s.clone(),
        Value::U64(n) => n.to_string(),
        Value::I64(n) => n.to_string(),
        Value::Bool(b) => b.to_string(),
        other => panic!("unsupported map key type: {other:?}"),
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (key_to_string(&k.to_value()), v.to_value()))
                .collect(),
        )
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Map(entries) => entries
                .iter()
                .map(|(k, v)| Ok((K::from_value(&Value::Str(k.clone()))?, V::from_value(v)?)))
                .collect(),
            other => type_error("map", other),
        }
    }
}
