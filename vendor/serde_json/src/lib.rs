//! Vendored JSON serialization over the vendored `serde` data model.
//!
//! Implements the handful of entry points the workspace uses —
//! [`to_string`], [`to_string_pretty`], [`to_writer_pretty`], [`from_str`],
//! [`from_reader`] — with a hand-rolled writer and recursive-descent
//! parser. Numbers round-trip exactly: integers stay integers and floats
//! are printed with Rust's shortest round-trip formatting.

use std::fmt;
use std::io::{Read, Write};

use serde::{Deserialize, Serialize, Value};

/// A serialization or deserialization error.
#[derive(Debug)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Self { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Self::new(e.to_string())
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Self::new(format!("io error: {e}"))
    }
}

// ---------------------------------------------------------------------------
// Writing
// ---------------------------------------------------------------------------

fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_value(out: &mut String, value: &Value, pretty: bool, indent: usize) {
    let pad = |out: &mut String, n: usize| {
        if pretty {
            out.push('\n');
            out.push_str(&"  ".repeat(n));
        }
    };
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(x) => {
            if x.is_finite() {
                // Debug formatting of f64 is the shortest exact round-trip
                // representation and always contains a '.' or exponent.
                out.push_str(&format!("{x:?}"));
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => escape_into(out, s),
        Value::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                pad(out, indent + 1);
                write_value(out, item, pretty, indent + 1);
            }
            pad(out, indent);
            out.push(']');
        }
        Value::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                pad(out, indent + 1);
                escape_into(out, key);
                out.push(':');
                if pretty {
                    out.push(' ');
                }
                write_value(out, item, pretty, indent + 1);
            }
            pad(out, indent);
            out.push('}');
        }
    }
}

/// Serializes `value` to a compact JSON string.
///
/// # Errors
///
/// Currently infallible for tree-shaped values; the `Result` mirrors the
/// upstream serde_json signature.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), false, 0);
    Ok(out)
}

/// Serializes `value` to a pretty-printed (2-space indented) JSON string.
///
/// # Errors
///
/// As for [`to_string`].
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), true, 0);
    Ok(out)
}

/// Serializes `value` pretty-printed into `writer`.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn to_writer_pretty<W: Write, T: Serialize>(mut writer: W, value: &T) -> Result<(), Error> {
    let s = to_string_pretty(value)?;
    writer.write_all(s.as_bytes())?;
    Ok(())
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Self {
            bytes: s.as_bytes(),
            pos: 0,
        }
    }

    fn error(&self, msg: &str) -> Error {
        Error::new(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected `{}`", byte as char)))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek().ok_or_else(|| self.error("unexpected end"))? {
            b'n' => self.parse_keyword("null", Value::Null),
            b't' => self.parse_keyword("true", Value::Bool(true)),
            b'f' => self.parse_keyword("false", Value::Bool(false)),
            b'"' => Ok(Value::Str(self.parse_string()?)),
            b'[' => self.parse_array(),
            b'{' => self.parse_map(),
            _ => self.parse_number(),
        }
    }

    fn parse_keyword(&mut self, word: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.error(&format!("expected `{word}`")))
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self
                .peek()
                .ok_or_else(|| self.error("unterminated string"))?
            {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| self.error("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let code = self.parse_hex4()?;
                            let c = char::from_u32(code)
                                .ok_or_else(|| self.error("invalid unicode escape"))?;
                            out.push(c);
                        }
                        _ => return Err(self.error("unknown escape")),
                    }
                }
                _ => {
                    // Consume one UTF-8 character (the input is a &str, so
                    // boundaries are valid).
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len() && (self.bytes[self.pos] & 0xC0) == 0x80 {
                        self.pos += 1;
                    }
                    let s = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.error("invalid utf-8"))?;
                    out.push_str(s);
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.error("truncated unicode escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.error("invalid unicode escape"))?;
        let code =
            u32::from_str_radix(hex, 16).map_err(|_| self.error("invalid unicode escape"))?;
        self.pos = end;
        Ok(code)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.error("invalid number"))?;
        if text.is_empty() {
            return Err(self.error("expected value"));
        }
        if !text.contains(['.', 'e', 'E']) {
            if let Some(stripped) = text.strip_prefix('-') {
                if let Ok(n) = stripped.parse::<i64>() {
                    return Ok(Value::I64(-n));
                }
            } else if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| self.error("invalid number"))
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => return Err(self.error("expected `,` or `]`")),
            }
        }
    }

    fn parse_map(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => return Err(self.error("expected `,` or `}`")),
            }
        }
    }
}

/// Parses a value of type `T` from a JSON string.
///
/// # Errors
///
/// Returns an [`Error`] on malformed JSON or a shape mismatch.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut parser = Parser::new(s);
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(parser.error("trailing characters"));
    }
    Ok(T::from_value(&value)?)
}

/// Reads all of `reader` and parses a value of type `T` from it.
///
/// # Errors
///
/// Propagates I/O errors and parse failures.
pub fn from_reader<R: Read, T: Deserialize>(mut reader: R) -> Result<T, Error> {
    let mut buf = String::new();
    reader.read_to_string(&mut buf)?;
    from_str(&buf)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_scalars_and_containers() {
        let v: Vec<u64> = from_str(&to_string(&vec![1u64, 2, 3]).unwrap()).unwrap();
        assert_eq!(v, vec![1, 2, 3]);
        let x: f64 = from_str(&to_string(&0.1f64).unwrap()).unwrap();
        assert_eq!(x, 0.1);
        let s: String = from_str(&to_string(&"a\"b\\c\nd".to_string()).unwrap()).unwrap();
        assert_eq!(s, "a\"b\\c\nd");
        let o: Option<u32> = from_str("null").unwrap();
        assert_eq!(o, None);
    }

    #[test]
    fn integer_keyed_maps_stringify() {
        let mut m = std::collections::BTreeMap::new();
        m.insert(7u64, true);
        let json = to_string(&m).unwrap();
        assert_eq!(json, "{\"7\":true}");
        let back: std::collections::BTreeMap<u64, bool> = from_str(&json).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn pretty_output_parses_back() {
        let m: std::collections::BTreeMap<u64, Vec<i64>> =
            [(1, vec![-1, 2]), (2, vec![])].into_iter().collect();
        let pretty = to_string_pretty(&m).unwrap();
        assert!(pretty.contains('\n'));
        let back: std::collections::BTreeMap<u64, Vec<i64>> = from_str(&pretty).unwrap();
        assert_eq!(back, m);
    }
}
