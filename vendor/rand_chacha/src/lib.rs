//! Vendored ChaCha8 random number generator.
//!
//! A real (8-round) ChaCha keystream generator implementing the vendored
//! [`rand`] crate's [`RngCore`]/[`SeedableRng`] traits. Deterministic for a
//! fixed seed; stream-position bit-compatibility with the upstream
//! `rand_chacha` crate is not a goal.

use rand::{RngCore, SeedableRng};

const CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];
const ROUNDS: usize = 8;

/// A ChaCha stream cipher RNG with 8 rounds.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    key: [u32; 8],
    counter: u64,
    buffer: [u32; 16],
    index: usize,
}

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CONSTANTS);
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        // Nonce words stay zero: one keystream per seed.
        let initial = state;
        for _ in 0..ROUNDS / 2 {
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (word, init) in state.iter_mut().zip(initial) {
            *word = word.wrapping_add(init);
        }
        self.buffer = state;
        self.counter = self.counter.wrapping_add(1);
        self.index = 0;
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let word = self.buffer[self.index];
        self.index += 1;
        word
    }

    fn next_u64(&mut self) -> u64 {
        let lo = u64::from(self.next_u32());
        let hi = u64::from(self.next_u32());
        (hi << 32) | lo
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (word, chunk) in key.iter_mut().zip(seed.chunks_exact(4)) {
            *word = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        Self {
            key,
            counter: 0,
            buffer: [0; 16],
            index: 16,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn clone_preserves_stream_position() {
        let mut a = ChaCha8Rng::seed_from_u64(7);
        a.next_u64();
        let mut b = a.clone();
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
