//! Integration: fleet populations reproduce the paper's Table I structure
//! when measured through the pipeline.

// Test/bench harness: unwraps abort the harness, which is the desired failure mode.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use core_map::core::cha_map;
use core_map::core::eviction;
use core_map::fleet::{CloudFleet, CpuModel};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Measured OS-core -> CHA vector of one instance (pipeline step 1 only).
fn measure_id_mapping(instance: &core_map::fleet::CloudInstance) -> Vec<u16> {
    let mut machine = instance.boot();
    let mut rng = ChaCha8Rng::seed_from_u64(1);
    let sets = eviction::build_all_sets(&mut machine, &mut rng, 8).expect("sets");
    let mapping = cha_map::discover(&mut machine, &sets, 3).expect("mapping");
    mapping
        .core_to_cha
        .iter()
        .map(|c| c.index() as u16)
        .collect()
}

#[test]
fn skylake_models_share_one_stride4_mapping() {
    let fleet = CloudFleet::with_seed(11);
    let expected_8124m: Vec<u16> =
        vec![0, 4, 8, 12, 16, 2, 6, 10, 14, 1, 5, 9, 13, 17, 3, 7, 11, 15];
    for idx in [0usize, 7, 42] {
        let inst = fleet.instance(CpuModel::Platinum8124M, idx).expect("inst");
        assert_eq!(measure_id_mapping(&inst), expected_8124m, "instance {idx}");
    }
}

#[test]
fn cl8259_mapping_depends_on_llc_only_case() {
    let fleet = CloudFleet::with_seed(11);
    // Table I's most common case (LLC-only CHAs 3 and 25).
    let case_a: Vec<u16> = vec![
        0, 4, 8, 12, 16, 20, 24, 2, 6, 10, 14, 18, 22, 1, 5, 9, 13, 17, 21, 7, 11, 15, 19, 23,
    ];
    // Find an instance with pattern in the (3,25) range and one outside.
    let mut seen_a = false;
    let mut seen_other = false;
    for idx in 0..20 {
        let inst = fleet.instance(CpuModel::Platinum8259CL, idx).expect("inst");
        let llc = core_map::fleet::sampler::llc_case_8259cl(inst.pattern());
        let measured = measure_id_mapping(&inst);
        if llc == (3, 25) {
            assert_eq!(measured, case_a, "case A instance {idx}");
            seen_a = true;
        } else {
            assert_ne!(measured, case_a, "other-case instance {idx}");
            seen_other = true;
        }
        if seen_a && seen_other {
            break;
        }
    }
    assert!(seen_a && seen_other, "both Table I cases sampled");
}

#[test]
fn same_pattern_instances_have_identical_layouts() {
    let fleet = CloudFleet::with_seed(11);
    let instances: Vec<_> = (0..30)
        .map(|i| fleet.instance(CpuModel::Platinum8175M, i).expect("inst"))
        .collect();
    for a in &instances {
        for b in &instances {
            let same_pattern = a.pattern() == b.pattern();
            let same_layout = a.floorplan() == b.floorplan();
            assert_eq!(same_pattern, same_layout);
        }
    }
}

#[test]
fn pattern_distribution_matches_allocation_table() {
    let fleet = CloudFleet::with_seed(23);
    let counts = core_map::fleet::sampler::pattern_counts(CpuModel::Platinum8124M);
    let mut histogram = vec![0usize; counts.len()];
    for inst in fleet.instances(CpuModel::Platinum8124M) {
        histogram[inst.pattern()] += 1;
    }
    assert_eq!(histogram, counts);
}
