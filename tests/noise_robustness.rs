//! Integration: the measurement pipeline under background mesh noise
//! (co-tenant traffic on a shared cloud host).

// Test/bench harness: unwraps abort the harness, which is the desired failure mode.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use core_map::core::{verify, CoreMapper, MapperConfig};
use core_map::mesh::{DieTemplate, FloorplanBuilder, TileCoord};
use core_map::uncore::{MachineConfig, NoiseModel, XeonMachine};

fn noisy_machine(noise: NoiseModel, seed: u64) -> (XeonMachine, core_map::mesh::Floorplan) {
    let plan = FloorplanBuilder::new(DieTemplate::SkylakeXcc)
        .disable(TileCoord::new(0, 2))
        .disable(TileCoord::new(3, 4))
        .build()
        .expect("floorplan");
    let truth = plan.clone();
    let machine = XeonMachine::new(
        plan,
        MachineConfig {
            noise,
            noise_seed: seed,
            ..MachineConfig::default()
        },
    );
    (machine, truth)
}

#[test]
fn light_noise_does_not_disturb_the_map() {
    let (mut machine, truth) = noisy_machine(NoiseModel::light(), 1);
    let cfg = MapperConfig {
        probe_iters: 16,
        thrash_rounds: 6,
        ping_iters: 32,
        ..MapperConfig::default()
    };
    let map = CoreMapper::with_config(cfg)
        .map(&mut machine)
        .expect("maps");
    assert!(verify::matches_relative(&map, &truth));
}

#[test]
fn busy_noise_needs_longer_measurements() {
    let (mut machine, truth) = noisy_machine(NoiseModel::busy(), 2);
    // Default (short) measurement windows may or may not survive; the
    // robust configuration with 4x the iterations must.
    let cfg = MapperConfig {
        probe_iters: 48,
        thrash_rounds: 16,
        ping_iters: 96,
        ..MapperConfig::default()
    };
    let map = CoreMapper::with_config(cfg)
        .map(&mut machine)
        .expect("maps");
    assert!(verify::matches_relative(&map, &truth));
}

#[test]
fn extreme_noise_fails_loudly_not_wrongly() {
    // With absurd noise and minimal iterations the pipeline must either
    // produce a correct map or report an error - never silently return a
    // wrong mapping of step 1 (the ambiguity check).
    let (mut machine, truth) = noisy_machine(
        NoiseModel {
            transfers_per_op: 8.0,
        },
        3,
    );
    let cfg = MapperConfig {
        probe_iters: 2,
        thrash_rounds: 1,
        ping_iters: 4,
        ..MapperConfig::default()
    };
    match CoreMapper::with_config(cfg).map(&mut machine) {
        Ok(map) => {
            assert_eq!(map.core_to_cha(), truth.core_to_cha());
        }
        Err(e) => {
            // Acceptable failure modes: ambiguity (weak margin or two cores
            // claiming one slice) or ILP infeasibility.
            let msg = e.to_string();
            assert!(
                msg.contains("unambiguous")
                    || msg.contains("both claim")
                    || msg.contains("infeasible")
                    || msg.contains("inconsistent"),
                "unexpected error {msg}"
            );
        }
    }
}
