//! The fault-tolerance contract of the hardened measurement pipeline.
//!
//! Four guarantees, each pinned here:
//!
//! 1. the fault injector under an empty plan is *op-for-op* transparent —
//!    wrapping a backend changes nothing about a campaign;
//! 2. under the reference fault plan (1e-4 MSR failures, 1e-3 counter
//!    drops, ±2 jitter) the hardened profile recovers a relative-correct
//!    map where the pre-hardening pipeline aborts;
//! 3. a transient fault on one targeted operation — the PPIN read that
//!    used to kill the whole run — is absorbed by the default retry
//!    policy;
//! 4. on a clean machine the default policy costs exactly zero extra
//!    machine operations.

// Test/bench harness: unwraps abort the harness, which is the desired failure mode.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use core_map::core::backend::{FaultPlan, FaultyBackend, RecordingBackend};
use core_map::core::{verify, CoreMapper, MapError, MapperConfig, RobustnessConfig};
use core_map::mesh::{DieTemplate, Floorplan, FloorplanBuilder};
use core_map::uncore::{MachineConfig, MsrError, XeonMachine};
use proptest::prelude::*;

fn skylake_plan() -> Floorplan {
    FloorplanBuilder::new(DieTemplate::SkylakeXcc)
        .build()
        .expect("SkylakeXcc floorplan")
}

fn skylake() -> XeonMachine {
    XeonMachine::new(skylake_plan(), MachineConfig::default())
}

/// The regression gate of the hardening layer: the fault rates the issue
/// requires the hardened pipeline to survive.
fn reference_plan(seed: u64) -> FaultPlan {
    FaultPlan::none(seed)
        .with_msr_fail_prob(1e-4)
        .with_counter_drop_prob(1e-3)
        .with_counter_jitter(2)
}

fn mapper_with(robustness: RobustnessConfig) -> CoreMapper {
    CoreMapper::with_config(MapperConfig {
        robustness,
        ..MapperConfig::default()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// `FaultyBackend` under `FaultPlan::none` must be invisible: the
    /// recorded operation stream of a full mapping campaign through the
    /// wrapper is identical to the bare backend's, whatever the campaign
    /// seed.
    #[test]
    fn faultless_injector_is_op_for_op_transparent(campaign_seed in 0u64..10_000) {
        let cfg = MapperConfig { seed: campaign_seed, ..MapperConfig::default() };

        let mut bare = RecordingBackend::new(skylake());
        let bare_map = CoreMapper::with_config(cfg.clone())
            .map(&mut bare)
            .expect("bare campaign maps");
        let (_, bare_trace) = bare.into_parts();

        let mut wrapped =
            FaultyBackend::new(RecordingBackend::new(skylake()), FaultPlan::none(campaign_seed));
        let wrapped_map = CoreMapper::with_config(cfg)
            .map(&mut wrapped)
            .expect("wrapped campaign maps");
        prop_assert_eq!(wrapped.injected_faults(), 0);
        let (_, wrapped_trace) = wrapped.into_inner().into_parts();

        prop_assert_eq!(&bare_trace, &wrapped_trace, "op streams diverged");
        prop_assert_eq!(bare_map, wrapped_map);
    }
}

#[test]
fn hardened_mapper_recovers_where_the_baseline_dies() {
    let truth = skylake_plan();

    // The pre-hardening pipeline (no retry, single samples, no
    // degradation) aborts under the reference fault rates...
    let mut baseline_machine = FaultyBackend::new(skylake(), reference_plan(2022));
    let baseline = mapper_with(RobustnessConfig::off()).map(&mut baseline_machine);
    assert!(
        baseline.is_err(),
        "baseline unexpectedly survived the reference fault plan"
    );

    // ...while the hardened profile recovers the full relative map.
    let mut hardened_machine = FaultyBackend::new(skylake(), reference_plan(2022));
    let (map, diag) = CoreMapper::hardened()
        .map_with_diagnostics(&mut hardened_machine)
        .expect("hardened mapping survives the reference fault plan");
    assert!(
        hardened_machine.injected_faults() > 0,
        "plan injected nothing"
    );
    assert!(
        verify::matches_relative(&map, &truth),
        "recovered map is not relative-correct; quality: {}",
        diag.quality
    );
}

#[test]
fn transient_ppin_fault_no_longer_kills_the_run() {
    // MSR-access index 0 is the PPIN read — the first MSR operation the
    // pipeline issues. Fault exactly that one.
    let ppin_fault = FaultPlan::none(0).with_msr_op_faults(vec![0]);

    // Without retry the old behaviour remains: the whole run dies on the
    // transient.
    let mut machine = FaultyBackend::new(skylake(), ppin_fault.clone());
    let err = mapper_with(RobustnessConfig::off())
        .map(&mut machine)
        .unwrap_err();
    assert_eq!(err, MapError::Msr(MsrError::PermissionDenied));

    // The default policy retries and completes, and the result is the
    // same map a clean machine produces.
    let clean_map = CoreMapper::new().map(&mut skylake()).expect("clean map");
    let mut machine = FaultyBackend::new(skylake(), ppin_fault);
    let map = CoreMapper::new()
        .map(&mut machine)
        .expect("one transient PPIN fault must not kill the campaign");
    assert_eq!(machine.injected_faults(), 1);
    assert_eq!(map, clean_map);

    // A *persistent* denial still surfaces as the same clean error: fault
    // more consecutive accesses than the policy retries.
    let stuck = FaultPlan::none(0).with_msr_op_faults((0..16).collect());
    let mut machine = FaultyBackend::new(skylake(), stuck);
    let err = CoreMapper::new().map(&mut machine).unwrap_err();
    assert_eq!(err, MapError::Msr(MsrError::PermissionDenied));
}

#[test]
fn hardening_defaults_add_no_overhead_on_a_clean_machine() {
    let truth = skylake_plan();

    let (map_default, diag_default) = CoreMapper::new()
        .map_with_diagnostics(&mut skylake())
        .expect("default map");
    let (map_off, diag_off) = mapper_with(RobustnessConfig::off())
        .map_with_diagnostics(&mut skylake())
        .expect("pre-hardening map");

    // Retry only engages on failure and the default takes single counter
    // samples, so a clean campaign must be *identical*, not merely close.
    assert_eq!(diag_default.machine_ops, diag_off.machine_ops);
    assert_eq!(map_default, map_off);
    assert!(verify::matches_exactly(&map_default, &truth));
    assert!(
        !diag_default.quality.is_degraded(),
        "clean campaign misreported as degraded: {}",
        diag_default.quality
    );
}
