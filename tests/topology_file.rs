//! Workspace-level tests of the `coremap-topology/v1` file format: the
//! shipped example files must round-trip byte-identically through
//! parse → validate → serialize, build into working floorplans, and the
//! parser must reject malformed or inconsistent floorplans with a
//! diagnosable error.
//!
//! Regenerate the example files after a deliberate format change with
//! `COREMAP_REGEN_TOPOLOGIES=1 cargo test --test topology_file`.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use coremap_mesh::{FloorplanBuilder, TileCoord, Topology};

fn example_path(name: &str) -> String {
    format!("{}/examples/topologies/{name}", env!("CARGO_MANIFEST_DIR"))
}

fn example_files() -> Vec<String> {
    let dir = format!("{}/examples/topologies", env!("CARGO_MANIFEST_DIR"));
    let mut names: Vec<String> = std::fs::read_dir(dir)
        .expect("examples/topologies exists")
        .map(|e| e.unwrap().file_name().into_string().unwrap())
        .filter(|n| n.ends_with(".json"))
        .collect();
    names.sort();
    names
}

#[test]
fn example_topology_files_round_trip_byte_identically() {
    if std::env::var_os("COREMAP_REGEN_TOPOLOGIES").is_some() {
        regenerate();
    }
    let files = example_files();
    assert!(!files.is_empty(), "no example topology files shipped");
    for name in files {
        let raw = std::fs::read_to_string(example_path(&name)).unwrap();
        let topo =
            Topology::from_json(&raw).unwrap_or_else(|e| panic!("{name} does not parse: {e}"));
        // parse -> build: the description is a working floorplan.
        let plan = FloorplanBuilder::from_topology(topo.clone())
            .build()
            .unwrap_or_else(|e| panic!("{name} does not build: {e}"));
        assert_eq!(plan.dim(), topo.dim(), "{name}");
        // parse -> serialize: byte-identical to the shipped file.
        let again = format!("{}\n", topo.to_json(true));
        assert_eq!(raw, again, "{name} is not serialized canonically");
    }
}

#[test]
fn builtin_zoo_round_trips_byte_identically() {
    for topo in Topology::builtins() {
        let json = topo.to_json(true);
        let back = Topology::from_json(&json).unwrap();
        assert_eq!(**topo, back, "{}", topo.name());
        assert_eq!(json, back.to_json(true), "{}", topo.name());
    }
}

#[test]
fn malformed_topology_files_are_rejected() {
    let base = Topology::builtin("skylake-xcc").unwrap().to_json(true);

    // Wrong schema tag.
    let bad_schema = base.replace("coremap-topology/v1", "coremap-topology/v0");
    let err = Topology::from_json(&bad_schema).unwrap_err().to_string();
    assert!(err.contains("schema"), "{err}");

    // Overlapping tile classes: an IMC coordinate repeated as disabled.
    let overlapping = base.replace(
        "\"disabled\": []",
        "\"disabled\": [{\"row\": 1, \"col\": 0}]",
    );
    let err = Topology::from_json(&overlapping).unwrap_err().to_string();
    assert!(err.contains("claimed by more"), "{err}");

    // Harvested core still listed in the explicit core order.
    let harvested = base
        .replace(
            "\"disabled\": []",
            "\"disabled\": [{\"row\": 0, \"col\": 0}]",
        )
        .replace("\"core_order\": null", "\"core_order\": [0, 1, 2]");
    let err = Topology::from_json(&harvested).unwrap_err().to_string();
    assert!(
        err.contains("core order") || err.contains("harvested"),
        "{err}"
    );

    // Not JSON at all.
    assert!(Topology::from_json("not json").is_err());
}

/// The shipped example descriptions, built through the public API so the
/// files always match the canonical serialization.
fn regenerate() {
    use coremap_mesh::{ChaNumbering, CoreNumbering, RoutingDiscipline, TopologySpec};

    // A small teaching mesh: 3x4, one IMC pair, one harvested tile and one
    // LLC-only tile — the floorplan walked through in the README's
    // topology-zoo section and examples/custom_target.rs.
    let tutorial = TopologySpec {
        schema: coremap_mesh::TOPOLOGY_SCHEMA.to_owned(),
        name: "tutorial-3x4".to_owned(),
        rows: 3,
        cols: 4,
        imc: vec![TileCoord::new(1, 0), TileCoord::new(1, 3)],
        system: vec![],
        cha_numbering: ChaNumbering::RowMajor,
        core_numbering: CoreNumbering::Ascending,
        routing: RoutingDiscipline::VerticalFirst,
        disabled: vec![TileCoord::new(0, 3)],
        llc_only: vec![TileCoord::new(2, 2)],
        core_order: None,
    };

    // An 8-tile ring NoC (client-die shape) with clockwise polarity.
    let ring = TopologySpec {
        schema: coremap_mesh::TOPOLOGY_SCHEMA.to_owned(),
        name: "ring-8".to_owned(),
        rows: 2,
        cols: 4,
        imc: vec![],
        system: vec![],
        cha_numbering: ChaNumbering::ColumnMajor,
        core_numbering: CoreNumbering::Ascending,
        routing: RoutingDiscipline::Ring { clockwise: true },
        disabled: vec![],
        llc_only: vec![],
        core_order: None,
    };

    for spec in [tutorial, ring] {
        let topo = Topology::try_from(spec).expect("example spec is valid");
        let path = example_path(&format!("{}.json", topo.name()));
        std::fs::create_dir_all(format!(
            "{}/examples/topologies",
            env!("CARGO_MANIFEST_DIR")
        ))
        .unwrap();
        std::fs::write(path, format!("{}\n", topo.to_json(true))).unwrap();
    }
}
