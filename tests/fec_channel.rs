//! Integration: forward error correction over the real thermal substrate.

// Test/bench harness: unwraps abort the harness, which is the desired failure mode.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use core_map::core::CoreMapper;
use core_map::fleet::{CloudFleet, CpuModel};
use core_map::mesh::{Direction, OsCoreId};
use core_map::thermal::fec::{coded_transfer, Hamming74, Interleaved};
use core_map::thermal::power::ThermalNoise;
use core_map::thermal::{ChannelConfig, ThermalParams, ThermalSim};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

fn pair_at(map: &core_map::core::CoreMap, hops: usize) -> (OsCoreId, OsCoreId) {
    let cores: Vec<OsCoreId> = (0..map.core_count() as u16).map(OsCoreId::new).collect();
    let _ = Direction::Up;
    cores
        .iter()
        .flat_map(|&a| cores.iter().map(move |&b| (a, b)))
        .find(|&(a, b)| {
            a != b && {
                let (ca, cb) = (map.coord_of_core(a), map.coord_of_core(b));
                ca.col == cb.col && ca.row.abs_diff(cb.row) == hops
            }
        })
        .expect("pair exists")
}

#[test]
fn interleaved_hamming_repairs_a_marginal_channel() {
    let fleet = CloudFleet::with_seed(2022);
    let instance = fleet
        .instance(CpuModel::Platinum8259CL, 0)
        .expect("instance 0");
    let mut machine = instance.boot();
    let map = CoreMapper::new().map(&mut machine).expect("maps");
    let (tx, rx) = pair_at(&map, 2); // 2-hop: marginal raw channel

    let mut rng = ChaCha8Rng::seed_from_u64(17);
    let payload: Vec<bool> = (0..240).map(|_| rng.gen()).collect();
    let tiles = instance.floorplan().dim().tile_count();
    let channel = ChannelConfig::new(vec![tx], rx, 2.0);

    let mut raw_sim = ThermalSim::new(instance.floorplan().clone(), ThermalParams::default(), 5)
        .with_noise(ThermalNoise::cloud(tiles));
    let raw = channel.transfer(&mut raw_sim, &payload);

    let code = Interleaved::new(Hamming74::new(), 24);
    let mut fec_sim = ThermalSim::new(instance.floorplan().clone(), ThermalParams::default(), 5)
        .with_noise(ThermalNoise::cloud(tiles));
    let (coded_ber, goodput) = coded_transfer(&code, &channel, &mut fec_sim, &payload);

    assert!(
        coded_ber <= raw.ber(),
        "FEC must not worsen the channel: {coded_ber} vs {}",
        raw.ber()
    );
    assert!(goodput > 0.0);
    // The coded stream pays a rate penalty.
    assert!(goodput < channel.bit_rate);
}
