//! Deterministic metrics: the observability contract of the pipeline.
//!
//! The `--metrics` export exists so that campaign behaviour can be diffed
//! across code changes. That only works if the deterministic snapshot is
//! *byte-identical* for identical inputs — across repeated runs of the
//! same process, across worker counts, and between a live run and its
//! trace replay. Wall-clock and scheduling artefacts are flagged volatile
//! and must never leak into the deterministic export.

// Test/bench harness: unwraps abort the harness, which is the desired failure mode.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::sync::Arc;

use core_map::core::backend::{FaultPlan, FaultyBackend, RecordingBackend, ReplayBackend};
use core_map::core::CoreMapper;
use core_map::fleet::{CloudFleet, CloudInstance, CpuModel, FleetRunner};
use core_map::mesh::{DieTemplate, FloorplanBuilder};
use core_map::obs;
use core_map::uncore::{MachineConfig, XeonMachine};

/// Runs a small fixed-seed mapping campaign under a fresh registry and
/// returns the deterministic JSON snapshot.
fn campaign_snapshot(workers: usize) -> String {
    let reg = Arc::new(obs::Registry::new());
    {
        let _guard = obs::install(reg.clone());
        let fleet = CloudFleet::with_seed(11);
        let outcome = FleetRunner::new(workers).map_instances(
            &fleet,
            CpuModel::Platinum8259CL,
            2,
            &CoreMapper::new(),
            CloudInstance::boot,
        );
        assert_eq!(outcome.failure_count(), 0, "campaign must map cleanly");
    }
    reg.to_json(false)
}

#[test]
fn snapshot_is_identical_across_runs_and_worker_counts() {
    let serial = campaign_snapshot(1);
    let parallel = campaign_snapshot(4);
    let parallel_again = campaign_snapshot(4);
    assert_eq!(
        parallel, parallel_again,
        "same-config reruns must export byte-identical metrics"
    );
    assert_eq!(
        serial, parallel,
        "worker count must not leak into the deterministic snapshot"
    );
    assert!(serial.contains("\"schema\": \"coremap-metrics/v1\""));
    // Spot-check that the snapshot actually covers every pipeline layer.
    for key in [
        "uncore.msr.reads",
        "core.eviction.samples",
        "core.cha_map.tests",
        "ilp.simplex.pivots",
        "fleet.instances.ok\": 2",
    ] {
        assert!(serial.contains(key), "missing {key} in:\n{serial}");
    }
}

#[test]
fn volatile_timings_stay_out_of_the_deterministic_export() {
    let reg = Arc::new(obs::Registry::new());
    {
        let _guard = obs::install(reg.clone());
        let fleet = CloudFleet::with_seed(11);
        FleetRunner::new(2).map_instances(
            &fleet,
            CpuModel::Platinum8259CL,
            1,
            &CoreMapper::new(),
            CloudInstance::boot,
        );
    }
    let deterministic = reg.to_json(false);
    let full = reg.to_json(true);
    assert!(!deterministic.contains(".us\""), "{deterministic}");
    assert!(!deterministic.contains("wall_us"), "{deterministic}");
    assert!(full.contains("core.map.stage.eviction.us"), "{full}");
    assert!(full.contains("fleet.instance.0000.wall_us"), "{full}");
}

#[test]
fn replayed_campaign_reproduces_the_recorded_counters() {
    let fleet = CloudFleet::with_seed(11);
    let instance = fleet
        .instance(CpuModel::Platinum8259CL, 0)
        .expect("instance");

    let recorded_reg = Arc::new(obs::Registry::new());
    let trace = {
        let _guard = obs::install(recorded_reg.clone());
        let mut recorder = RecordingBackend::new(instance.boot());
        CoreMapper::new().map(&mut recorder).expect("recorded map");
        recorder.into_parts().1
    };

    let replay_reg = Arc::new(obs::Registry::new());
    {
        let _guard = obs::install(replay_reg.clone());
        let mut replay = ReplayBackend::new(trace);
        CoreMapper::new().map(&mut replay).expect("replayed map");
    }

    // The replay drives the identical pipeline off the trace, so every
    // algorithmic counter above the backend layer must match exactly.
    for key in [
        "core.eviction.samples",
        "core.eviction.sets_built",
        "core.cha_map.tests",
        "core.traffic.core_pair_obs",
        "ilp.simplex.pivots",
        "ilp.bb.nodes",
        "ilp.presolve.tightenings",
    ] {
        assert_eq!(
            recorded_reg.counter_value(key),
            replay_reg.counter_value(key),
            "counter {key} diverged between record and replay"
        );
    }
    assert_eq!(replay_reg.counter_value("core.replay.divergences"), 0);
}

/// Maps one full SkylakeXcc machine with the given ILP worker count and
/// returns the rendered map plus the deterministic metric snapshot.
fn ilp_worker_snapshot(ilp_workers: usize) -> (String, String) {
    use core_map::core::MapperConfig;

    let reg = Arc::new(obs::Registry::new());
    let rendered = {
        let _guard = obs::install(reg.clone());
        let plan = FloorplanBuilder::new(DieTemplate::SkylakeXcc)
            .build()
            .expect("floorplan");
        let mut machine = XeonMachine::new(plan, MachineConfig::default());
        let mapper = CoreMapper::with_config(MapperConfig {
            ilp_workers,
            ..MapperConfig::default()
        });
        mapper.map(&mut machine).expect("map").render()
    };
    (rendered, reg.to_json(false))
}

#[test]
fn ilp_worker_count_changes_neither_map_nor_metrics() {
    // The speculative parallel branch & bound must be invisible in every
    // output: same placement, same metric stream, at any worker count.
    let (serial_map, serial_metrics) = ilp_worker_snapshot(1);
    let (parallel_map, parallel_metrics) = ilp_worker_snapshot(8);
    assert_eq!(
        serial_map, parallel_map,
        "ILP worker count must not change the recovered map"
    );
    assert_eq!(
        serial_metrics, parallel_metrics,
        "ILP worker count must not leak into the deterministic snapshot"
    );
    for key in ["ilp.bb.nodes", "ilp.simplex.pivots"] {
        assert!(serial_metrics.contains(key), "missing {key}");
    }
}

/// Solves a presolve-heavy reconstruction — the literal per-tile/per-path
/// formulation on an irregular floorplan — and returns the deterministic
/// snapshot. The full formulation funnels every observation through
/// `merge_equalities`, so this exercises the presolve union-find, bound
/// merging and constraint dedup far harder than the class-merged path.
fn presolve_heavy_snapshot() -> String {
    use core_map::core::ilp_model;
    use core_map::mesh::TileCoord;

    let reg = Arc::new(obs::Registry::new());
    {
        let _guard = obs::install(reg.clone());
        // A dense 3x2 block of active tiles: small enough for the literal
        // per-path formulation (exponential on full dies), dense enough
        // that presolve merges a non-trivial equality web.
        let template = DieTemplate::SkylakeXcc;
        let keep: Vec<TileCoord> = (2..5)
            .flat_map(|r| (0..2).map(move |c| TileCoord::new(r, c)))
            .collect();
        let disable = template
            .core_capable_positions()
            .iter()
            .copied()
            .filter(|p| !keep.contains(p));
        let plan = FloorplanBuilder::new(template)
            .disable_all(disable)
            .build()
            .expect("floorplan");
        let observations = core_map::core::ObservationSet::synthetic(&plan);
        let rec = ilp_model::reconstruct_full(&observations, plan.dim()).expect("solve");
        assert!(!rec.positions.is_empty());
    }
    reg.to_json(false)
}

#[test]
fn presolve_heavy_model_exports_identical_snapshots() {
    // Regression guard for the presolve/ilp-model BTree ordering work: a
    // HashMap iteration anywhere in variable merging, constraint dedup or
    // objective accumulation shows up here as a diff in pivot/tightening
    // counters between two identical solves.
    let first = presolve_heavy_snapshot();
    let second = presolve_heavy_snapshot();
    assert_eq!(
        first, second,
        "presolve-heavy solve must export byte-identical metrics"
    );
    assert!(
        first.contains("ilp.presolve.tightenings"),
        "presolve did not run:\n{first}"
    );
    assert!(first.contains("ilp.simplex.pivots"), "{first}");
}

/// Runs a hardened mapping campaign against a seeded fault injector under
/// a fresh registry and returns the deterministic snapshot.
fn hardened_faulty_snapshot() -> String {
    let reg = Arc::new(obs::Registry::new());
    {
        let _guard = obs::install(reg.clone());
        let plan = FloorplanBuilder::new(DieTemplate::SkylakeXcc)
            .build()
            .expect("floorplan");
        let machine = XeonMachine::new(plan, MachineConfig::default());
        let faults = FaultPlan::none(2022)
            .with_msr_fail_prob(1e-4)
            .with_counter_drop_prob(1e-3)
            .with_counter_jitter(2);
        let mut faulty = FaultyBackend::new(machine, faults);
        CoreMapper::hardened()
            .map(&mut faulty)
            .expect("hardened campaign survives the reference fault plan");
    }
    reg.to_json(false)
}

#[test]
fn hardened_faulty_campaign_exports_deterministic_recovery_counters() {
    let first = hardened_faulty_snapshot();
    let second = hardened_faulty_snapshot();
    // Retry backoff is drawn from the policy's seeded stream and counted
    // in steps rather than slept in wall-clock, so even a fault-riddled
    // campaign exports byte-identical recovery metrics.
    assert_eq!(
        first, second,
        "hardened faulty campaign must be deterministically instrumented"
    );
    for key in [
        "core.retry.attempts",
        "core.retry.backoff_steps",
        "core.harden.resamples",
    ] {
        assert!(first.contains(key), "missing {key} in:\n{first}");
    }
}
