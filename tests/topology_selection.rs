//! End-to-end topology hypothesis selection through the public API: an
//! unlabeled machine is mapped under the full builtin zoo and the mapper
//! must identify the machine's true topology, report per-hypothesis
//! verdicts through [`MapQuality`], stamp the winner on the [`CoreMap`]
//! and emit the `topo.hypotheses.{tested,eliminated}` counters.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::sync::Arc;

use core_map::core::{verify, CoreMapper, MapperConfig};
use core_map::mesh::{FloorplanBuilder, Topology};
use core_map::obs;
use core_map::uncore::{MachineConfig, XeonMachine};

fn zoo() -> Vec<Topology> {
    Topology::builtins().iter().map(|&t| t.clone()).collect()
}

fn zoo_mapper() -> CoreMapper {
    CoreMapper::with_config(MapperConfig {
        topology_hypotheses: zoo(),
        ..MapperConfig::default()
    })
}

/// Maps a machine built from the named builtin topology under the full
/// zoo, returning the map, quality report and the selection counters. The
/// machine's simulated interconnect routes with the topology's own
/// discipline — the machine *is* what the hypothesis claims it is.
fn select_on(
    truth: &str,
) -> (
    core_map::core::CoreMap,
    core_map::core::MapQuality,
    u64,
    u64,
) {
    let topo = Topology::builtin(truth).unwrap().clone();
    let routing = topo.routing();
    let plan = FloorplanBuilder::from_topology(topo).build().unwrap();
    let mut machine = XeonMachine::new(
        plan,
        MachineConfig {
            routing,
            ..MachineConfig::default()
        },
    );
    let reg = Arc::new(obs::Registry::new());
    let (map, diag) = {
        let _guard = obs::install(reg.clone());
        zoo_mapper().map_with_diagnostics(&mut machine).unwrap()
    };
    (
        map,
        diag.quality,
        reg.counter_value("topo.hypotheses.tested"),
        reg.counter_value("topo.hypotheses.eliminated"),
    )
}

#[test]
fn skylake_machine_selects_skylake() {
    let (map, quality, tested, eliminated) = select_on("skylake-xcc");
    assert_eq!(map.topology_name(), Some("skylake-xcc"));
    assert_eq!(quality.winning_topology.as_deref(), Some("skylake-xcc"));
    assert_eq!(tested, 6);
    // Cascade Lake shares the geometry and survives; everything else falls.
    assert_eq!(eliminated, 4);
    let survivors: Vec<&str> = quality
        .hypothesis_scores
        .iter()
        .filter(|s| s.survives())
        .map(|s| s.name.as_str())
        .collect();
    assert_eq!(survivors, ["skylake-xcc", "cascadelake-xcc"]);
    // The recovered placement is the true one.
    let truth = FloorplanBuilder::from_topology(Topology::builtin("skylake-xcc").unwrap().clone())
        .build()
        .unwrap();
    assert!(verify::matches_exactly(&map, &truth));
}

#[test]
fn icelake_machine_eliminates_the_wrong_die() {
    let (map, quality, tested, eliminated) = select_on("icelake-xcc");
    assert_eq!(map.topology_name(), Some("icelake-xcc"));
    assert_eq!(tested, 6);
    assert_eq!(eliminated, 5);
    // Every Skylake-shaped hypothesis dies on capacity: 40 CHAs cannot fit
    // a 28-capable grid.
    for name in ["skylake-xcc", "cascadelake-xcc", "ring-28"] {
        let s = quality
            .hypothesis_scores
            .iter()
            .find(|s| s.name == name)
            .unwrap();
        assert!(!s.survives(), "{name} should be eliminated");
        assert!(s.eliminated_by.is_some(), "{name} lacks a reason");
    }
}

#[test]
fn ring_machine_selects_the_ring_hypothesis() {
    let (map, quality, tested, eliminated) = select_on("ring-28");
    assert_eq!(map.topology_name(), Some("ring-28"));
    assert_eq!(quality.winning_topology.as_deref(), Some("ring-28"));
    assert_eq!((tested, eliminated), (6, 5));
    // No mesh hypothesis explains a ring trace.
    assert!(quality
        .hypothesis_scores
        .iter()
        .all(|s| s.name == "ring-28" || !s.survives()));
}

#[test]
fn selection_is_deterministic_across_reruns() {
    let (map_a, quality_a, _, _) = select_on("skylake-xcc");
    let (map_b, quality_b, _, _) = select_on("skylake-xcc");
    assert_eq!(map_a, map_b);
    assert_eq!(quality_a, quality_b);
}
