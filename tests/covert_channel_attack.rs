//! Integration: the full attack chain — map the machine, plan placement
//! from the recovered map, transmit through the thermal substrate.

// Test/bench harness: unwraps abort the harness, which is the desired failure mode.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use core_map::core::CoreMapper;
use core_map::fleet::{CloudFleet, CpuModel};
use core_map::mesh::OsCoreId;
use core_map::thermal::encoding::{bits_to_bytes, bytes_to_bits};
use core_map::thermal::power::ThermalNoise;
use core_map::thermal::sensor::TempSensor;
use core_map::thermal::{run_multi_channel, ChannelConfig, ThermalParams, ThermalSim};

fn mapped_instance() -> (core_map::fleet::CloudInstance, core_map::core::CoreMap) {
    let fleet = CloudFleet::with_seed(2022);
    let instance = fleet
        .instance(CpuModel::Platinum8259CL, 0)
        .expect("instance 0");
    let mut machine = instance.boot();
    let map = CoreMapper::new().map(&mut machine).expect("maps");
    (instance, map)
}

fn vertical_pair(map: &core_map::core::CoreMap) -> (OsCoreId, OsCoreId) {
    (0..map.core_count() as u16)
        .map(OsCoreId::new)
        .find_map(|rx| map.vertical_neighbor_cores(rx).first().map(|&tx| (tx, rx)))
        .expect("vertical pair on recovered map")
}

#[test]
fn message_crosses_the_die_intact() {
    let (instance, map) = mapped_instance();
    let (tx, rx) = vertical_pair(&map);
    let message = b"moon";
    let bits = bytes_to_bits(message);
    let tiles = instance.floorplan().dim().tile_count();
    let mut sim = ThermalSim::new(instance.floorplan().clone(), ThermalParams::default(), 3)
        .with_noise(ThermalNoise::cloud(tiles));
    let report = ChannelConfig::new(vec![tx], rx, 2.0).transfer(&mut sim, &bits);
    assert_eq!(
        bits_to_bytes(&report.decoded),
        message,
        "BER {}",
        report.ber()
    );
}

#[test]
fn map_guided_placement_beats_blind_placement() {
    // The paper's motivation for mapping at all: lstopo-style consecutive
    // IDs are rarely physical neighbours. Compare the channel the map
    // recommends against a blind "adjacent OS IDs" channel, averaged over
    // a few ID choices.
    let (instance, map) = mapped_instance();
    let (tx, rx) = vertical_pair(&map);
    let bits = core_map::thermal::encoding::bytes_to_bits(b"q1");
    let tiles = instance.floorplan().dim().tile_count();

    let mut sim = ThermalSim::new(instance.floorplan().clone(), ThermalParams::default(), 4)
        .with_noise(ThermalNoise::cloud(tiles));
    let guided = ChannelConfig::new(vec![tx], rx, 4.0).transfer(&mut sim, &bits);

    let mut blind_errors = 0usize;
    let mut blind_bits = 0usize;
    for first in [0u16, 5, 9] {
        let a = OsCoreId::new(first);
        let b = OsCoreId::new(first + 1);
        let mut sim = ThermalSim::new(instance.floorplan().clone(), ThermalParams::default(), 4)
            .with_noise(ThermalNoise::cloud(tiles));
        let r = ChannelConfig::new(vec![a], b, 4.0).transfer(&mut sim, &bits);
        blind_errors += r.errors;
        blind_bits += r.bits;
    }
    let blind_ber = blind_errors as f64 / blind_bits as f64;
    assert!(
        guided.ber() <= blind_ber,
        "guided {} vs blind {}",
        guided.ber(),
        blind_ber
    );
}

#[test]
fn multi_channel_attack_from_recovered_map() {
    let (instance, map) = mapped_instance();
    // Two disjoint vertical pairs from the recovered map.
    let mut pairs: Vec<(OsCoreId, OsCoreId)> = Vec::new();
    let mut used = Vec::new();
    for rx in (0..map.core_count() as u16).map(OsCoreId::new) {
        if used.contains(&rx) {
            continue;
        }
        if let Some(&tx) = map
            .vertical_neighbor_cores(rx)
            .iter()
            .find(|t| !used.contains(*t))
        {
            pairs.push((tx, rx));
            used.extend([tx, rx]);
            if pairs.len() == 2 {
                break;
            }
        }
    }
    assert_eq!(pairs.len(), 2);
    let channels: Vec<ChannelConfig> = pairs
        .iter()
        .map(|&(tx, rx)| ChannelConfig::new(vec![tx], rx, 1.0))
        .collect();
    let payloads = vec![bytes_to_bits(b"aa"), bytes_to_bits(b"bb")];
    let mut sim = ThermalSim::new(instance.floorplan().clone(), ThermalParams::default(), 8);
    let report = run_multi_channel(&mut sim, &channels, &payloads);
    assert!((report.aggregate_rate_bps() - 2.0).abs() < 1e-9);
    assert!(
        report.aggregate_ber() < 0.15,
        "ber {}",
        report.aggregate_ber()
    );
}

#[test]
fn coarse_sensor_defense_blocks_the_channel() {
    let (instance, map) = mapped_instance();
    let (tx, rx) = vertical_pair(&map);
    let bits = core_map::thermal::encoding::bytes_to_bits(b"leak me");
    let mut sim = ThermalSim::new(instance.floorplan().clone(), ThermalParams::default(), 6)
        .with_sensor(TempSensor::degraded(8.0, 50.0));
    let report = ChannelConfig::new(vec![tx], rx, 2.0).transfer(&mut sim, &bits);
    assert!(
        report.ber() > 0.25,
        "8 C quantization should destroy the channel, got {}",
        report.ber()
    );
}
