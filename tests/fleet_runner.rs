//! The shared fleet runner: worker-count independence and failure
//! surfacing.
//!
//! `FleetRunner` is the one parallel harness behind the CLI's fleet survey
//! and the experiment binaries. Its contract: per-instance results arrive
//! in instance order whatever the worker count, and a failing instance is
//! an `Err` entry instead of a campaign abort.

// Test/bench harness: unwraps abort the harness, which is the desired failure mode.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use core_map::core::backend::MachineBackend;
use core_map::core::CoreMapper;
use core_map::fleet::{CloudFleet, CloudInstance, CpuModel, FleetRunner, JobFailure, SurveyStats};
use core_map::mesh::{ChaId, GridDim, OsCoreId};
use core_map::uncore::{MsrError, PhysAddr, XeonMachine};

#[test]
fn parallel_survey_matches_sequential() {
    let fleet = CloudFleet::with_seed(2022);
    let model = CpuModel::Platinum8259CL;
    let count = 6;
    let mapper = CoreMapper::new();

    let sequential =
        FleetRunner::sequential().map_instances(&fleet, model, count, &mapper, CloudInstance::boot);
    let parallel =
        FleetRunner::new(4).map_instances(&fleet, model, count, &mapper, CloudInstance::boot);

    assert_eq!(sequential.len(), count);
    assert_eq!(parallel.len(), count);
    assert_eq!(sequential.failure_count(), 0);
    assert_eq!(parallel.failure_count(), 0);

    // Same maps, same order, instance by instance.
    for ((si, sm), (pi, pm)) in sequential.successes().zip(parallel.successes()) {
        assert_eq!(si.index(), pi.index());
        assert_eq!(sm, pm, "map of instance #{} differs", si.index());
    }

    // And therefore identical survey statistics (paper Tables I/II).
    let seq_stats = SurveyStats::collect(&sequential);
    let par_stats = SurveyStats::collect(&parallel);
    assert_eq!(seq_stats.patterns, par_stats.patterns);
    assert_eq!(seq_stats.ids, par_stats.ids);
    assert_eq!(seq_stats, par_stats);
    assert_eq!(seq_stats.mapped, count);
}

#[test]
fn failures_surface_per_instance_without_aborting() {
    let fleet = CloudFleet::with_seed(5);
    let outcome = FleetRunner::new(3).run(&fleet, CpuModel::Platinum8175M, 5, |instance| {
        if instance.index() == 2 {
            Err("synthetic measurement failure")
        } else {
            Ok(instance.ppin())
        }
    });

    assert_eq!(outcome.len(), 5);
    assert_eq!(outcome.failure_count(), 1);
    let failed: Vec<usize> = outcome.failures().map(|(i, _)| i.index()).collect();
    assert_eq!(failed, vec![2]);
    let ok: Vec<usize> = outcome.successes().map(|(i, _)| i.index()).collect();
    assert_eq!(ok, vec![0, 1, 3, 4]);

    // Each success reports its own instance's PPIN, in instance order.
    for (instance, ppin) in outcome.successes() {
        assert_eq!(*ppin, instance.ppin());
    }
}

/// A backend that panics mid-campaign after a fixed number of line writes
/// — modelling an instance whose measurement code hits an unexpected state
/// deep inside the pipeline.
struct PanickingBackend {
    inner: XeonMachine,
    writes_left: Option<u64>,
}

impl MachineBackend for PanickingBackend {
    fn read_msr(&self, addr: u32) -> Result<u64, MsrError> {
        self.inner.read_msr(addr)
    }
    fn write_msr(&mut self, addr: u32, value: u64) -> Result<(), MsrError> {
        self.inner.write_msr(addr, value)
    }
    fn cha_count(&self) -> usize {
        self.inner.cha_count()
    }
    fn core_count(&self) -> usize {
        self.inner.core_count()
    }
    fn os_cores(&self) -> Vec<OsCoreId> {
        self.inner.os_cores()
    }
    fn grid_dim(&self) -> GridDim {
        self.inner.grid_dim()
    }
    fn l2_geometry(&self) -> (usize, usize) {
        self.inner.l2_geometry()
    }
    fn address_space(&self) -> u64 {
        self.inner.address_space()
    }
    fn home_of(&self, pa: PhysAddr) -> ChaId {
        self.inner.home_of(pa)
    }
    fn write_line(&mut self, core: OsCoreId, pa: PhysAddr) {
        if let Some(left) = &mut self.writes_left {
            assert!(*left > 0, "injected backend panic: write budget exhausted");
            *left -= 1;
        }
        self.inner.write_line(core, pa);
    }
    fn read_line(&mut self, core: OsCoreId, pa: PhysAddr) {
        self.inner.read_line(core, pa);
    }
    fn flush_caches(&mut self) {
        self.inner.flush_caches();
    }
    fn op_count(&self) -> u64 {
        self.inner.op_count()
    }
}

#[test]
fn panicking_backend_fails_one_instance_not_the_campaign() {
    let fleet = CloudFleet::with_seed(2022);
    let model = CpuModel::Platinum8259CL;
    let count = 4;
    let poisoned = 1usize;

    let outcome = FleetRunner::new(3).map_instances(
        &fleet,
        model,
        count,
        &CoreMapper::new(),
        |instance: &CloudInstance| PanickingBackend {
            inner: instance.boot(),
            // The poisoned instance blows up a few thousand writes into
            // step 1; every other instance runs unrestricted.
            writes_left: (instance.index() == poisoned).then_some(5_000),
        },
    );

    assert_eq!(outcome.len(), count);
    assert_eq!(outcome.failure_count(), 1);
    assert_eq!(outcome.panic_count(), 1);
    let (instance, failure) = outcome.failures().next().unwrap();
    assert_eq!(instance.index(), poisoned);
    assert!(
        matches!(failure, JobFailure::Panic(msg) if msg.contains("write budget exhausted")),
        "{failure}"
    );

    // The surviving instances still map correctly.
    let ok: Vec<usize> = outcome.successes().map(|(i, _)| i.index()).collect();
    assert_eq!(ok, vec![0, 2, 3]);
    let stats = SurveyStats::collect(&outcome);
    assert_eq!(stats.mapped, count - 1);
    assert_eq!(stats.verified, count - 1);
    assert_eq!(stats.failed, 1);
}

#[test]
fn worker_count_does_not_change_plain_run_results() {
    let fleet = CloudFleet::with_seed(2022);
    let digest = |workers: usize| {
        FleetRunner::new(workers)
            .run(&fleet, CpuModel::Platinum8259CL, 8, |instance| {
                Ok::<(usize, u64), &str>((instance.index(), instance.ppin().value()))
            })
            .into_successes()
            .into_iter()
            .map(|(_, v)| v)
            .collect::<Vec<_>>()
    };
    let one = digest(1);
    assert_eq!(digest(2), one);
    assert_eq!(digest(8), one);
    assert_eq!(one.len(), 8);
}
