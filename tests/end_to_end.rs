//! End-to-end integration: fleet instance -> machine -> full mapping
//! pipeline -> verification, across all four CPU models.

// Test/bench harness: unwraps abort the harness, which is the desired failure mode.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use core_map::core::{verify, CoreMapper};
use core_map::fleet::{CloudFleet, CpuModel, MapRegistry};
use core_map::mesh::OsCoreId;

#[test]
fn maps_every_model_accurately() {
    let fleet = CloudFleet::with_seed(2022);
    for model in CpuModel::ALL {
        let instance = fleet.instance(model, 0).expect("instance 0");
        let mut machine = instance.boot();
        let (map, diagnostics) = CoreMapper::new()
            .map_with_diagnostics(&mut machine)
            .expect("pipeline succeeds");

        assert_eq!(map.core_count(), model.core_count(), "{model}");
        assert_eq!(map.cha_count(), model.cha_count(), "{model}");
        assert_eq!(map.ppin(), Some(instance.ppin()), "{model}");

        let truth = instance.floorplan();
        // The recovered OS-core<->CHA mapping and LLC-only set are exact.
        assert_eq!(map.core_to_cha(), truth.core_to_cha(), "{model}");
        assert_eq!(map.llc_only(), truth.llc_only_chas(), "{model}");
        // Placement: the recovered map must explain every measured
        // observation (the exact guarantee the ILP gives), and sparse dies
        // may additionally contain tiles whose position is physically
        // unobservable (Sec. II-D), so pairwise accuracy is checked
        // against a high-but-not-perfect bar.
        let positions: Vec<_> = truth.chas().map(|c| map.coord_of_cha(c)).collect();
        assert!(
            verify::observations_consistent(&positions, &diagnostics.observations, map.dim()),
            "{model}: map does not explain its own observations"
        );
        let acc = verify::pairwise_accuracy(&positions, truth);
        assert!(acc > 0.9, "{model}: pairwise accuracy {acc}");
    }
}

#[test]
fn dense_skx_instance_matches_exactly() {
    // The full-die case has no hidden tiles, so recovery is exact (up to
    // the documented mirror).
    let plan = core_map::mesh::FloorplanBuilder::new(core_map::mesh::DieTemplate::SkylakeXcc)
        .build()
        .expect("full die");
    let truth = plan.clone();
    let mut machine =
        core_map::uncore::XeonMachine::new(plan, core_map::uncore::MachineConfig::default());
    let map = CoreMapper::new()
        .map(&mut machine)
        .expect("pipeline succeeds");
    assert!(verify::matches_exactly(&map, &truth));
}

#[test]
fn registry_round_trips_recovered_maps() {
    let fleet = CloudFleet::with_seed(5);
    let mut registry = MapRegistry::new();
    let mut ppins = Vec::new();
    for idx in 0..2 {
        let instance = fleet
            .instance(CpuModel::Platinum8124M, idx)
            .expect("instance");
        let mut machine = instance.boot();
        let map = CoreMapper::new().map(&mut machine).expect("maps");
        ppins.push(instance.ppin());
        assert!(registry.insert(map));
    }
    let mut json = Vec::new();
    registry.save(&mut json).expect("serializes");
    let loaded = MapRegistry::load(json.as_slice()).expect("deserializes");
    assert_eq!(loaded.len(), 2);
    for ppin in ppins {
        let map = loaded.get(ppin).expect("registered map");
        assert_eq!(map.ppin(), Some(ppin));
    }
}

#[test]
fn recovered_map_supports_attack_planning() {
    let fleet = CloudFleet::with_seed(2022);
    let instance = fleet
        .instance(CpuModel::Platinum8175M, 0)
        .expect("instance");
    let mut machine = instance.boot();
    let map = CoreMapper::new().map(&mut machine).expect("maps");

    // Neighbour queries must agree with ground truth adjacency for every
    // core (this is what the thermal attack consumes).
    let truth = instance.floorplan();
    for core in (0..map.core_count() as u16).map(OsCoreId::new) {
        let recovered: usize = map.neighbor_cores(core).len();
        let tc = truth.coord_of_core(core);
        let actual = truth
            .cores()
            .filter(|&c| c != core && truth.coord_of_core(c).hop_distance(tc) == 1)
            .count();
        assert_eq!(recovered, actual, "cpu{} neighbour count", core.index());
    }
}

#[test]
fn unprivileged_tenant_cannot_map() {
    let fleet = CloudFleet::with_seed(2022);
    let instance = fleet
        .instance(CpuModel::Platinum8124M, 1)
        .expect("instance");
    let mut machine = instance.boot();
    machine.set_privileged(false);
    let err = CoreMapper::new().map(&mut machine).unwrap_err();
    assert!(matches!(
        err,
        core_map::core::MapError::Msr(core_map::uncore::MsrError::PermissionDenied)
    ));
}
