//! Backend conformance and the record → replay regression workflow.
//!
//! The four shipped backends — the simulated `XeonMachine`, the recording
//! and replay wrappers, and the fault injector — are interchangeable
//! behind `MachineBackend`. These tests drive each through the same
//! generic code paths and pin down the central guarantee: a recorded
//! SkylakeXcc mapping campaign, replayed with zero simulation behind it,
//! reproduces the recovered `CoreMap` bit for bit.

// Test/bench harness: unwraps abort the harness, which is the desired failure mode.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use core_map::core::backend::{
    FaultPlan, FaultyBackend, MachineBackend, MeasurementTrace, RecordingBackend, ReplayBackend,
    TraceOp,
};
use core_map::core::CoreMapper;
use core_map::mesh::{DieTemplate, FloorplanBuilder, OsCoreId};
use core_map::uncore::{msr, MachineConfig, PhysAddr, XeonMachine};

fn skylake() -> XeonMachine {
    let plan = FloorplanBuilder::new(DieTemplate::SkylakeXcc)
        .build()
        .expect("SkylakeXcc floorplan");
    XeonMachine::new(plan, MachineConfig::default())
}

/// Exercises every `MachineBackend` method once, checking the invariants
/// the pipeline relies on. Deterministic, so the op sequence it issues is
/// identical on every backend — which is what lets a recorded run replay
/// through this same function.
fn conformance_suite<B: MachineBackend>(backend: &mut B) -> (u64, usize) {
    assert!(backend.core_count() > 0, "no cores");
    assert!(
        backend.cha_count() >= backend.core_count(),
        "fewer CHAs than cores"
    );
    let cores = backend.os_cores();
    assert_eq!(cores.len(), backend.core_count());
    assert!(
        cores.windows(2).all(|w| w[0] < w[1]),
        "os_cores not ascending"
    );
    let dim = backend.grid_dim();
    assert!(dim.rows * dim.cols >= backend.cha_count(), "grid too small");
    let (sets, ways) = backend.l2_geometry();
    assert!(sets > 0 && ways > 0);
    assert!(backend.address_space() > 0);

    let ppin = backend
        .read_msr(msr::MSR_PPIN)
        .expect("PPIN readable with privilege");
    let home = backend.home_of(PhysAddr::new(0x1000)).index();
    assert!(home < backend.cha_count());

    let before = backend.op_count();
    backend.write_line(OsCoreId::new(0), PhysAddr::new(0x1000));
    backend.read_line(OsCoreId::new(1), PhysAddr::new(0x1000));
    backend.flush_caches();
    assert!(
        backend.op_count() >= before,
        "op_count must not go backwards"
    );
    (ppin, home)
}

#[test]
fn xeon_machine_passes_conformance() {
    let mut machine = skylake();
    conformance_suite(&mut machine);
}

#[test]
fn recording_is_transparent_and_replay_conforms() {
    let mut recorder = RecordingBackend::new(skylake());
    let direct = conformance_suite(&mut recorder);
    let ops = recorder.recorded_ops();
    assert!(ops > 0, "conformance suite must cross the trait");
    let (_machine, trace) = recorder.into_parts();
    assert_eq!(trace.len(), ops);

    let mut replay = ReplayBackend::new(trace);
    let replayed = conformance_suite(&mut replay);
    assert_eq!(direct, replayed, "replay must reproduce recorded answers");
    assert!(replay.is_exhausted(), "suite must consume the whole trace");
}

#[test]
fn conformance_trace_survives_json_round_trip() {
    let mut recorder = RecordingBackend::new(skylake());
    let direct = conformance_suite(&mut recorder);
    let (_machine, trace) = recorder.into_parts();

    let json = serde_json::to_string(&trace).expect("trace serializes");
    let restored: MeasurementTrace = serde_json::from_str(&json).expect("trace deserializes");
    assert_eq!(restored, trace);

    let mut replay = ReplayBackend::new(restored);
    assert_eq!(conformance_suite(&mut replay), direct);
}

#[test]
fn recorded_skylake_campaign_replays_to_identical_coremap() {
    // Reference run on the bare simulator.
    let mut machine = skylake();
    let reference = CoreMapper::new().map(&mut machine).expect("reference map");

    // Recorded run: the wrapper must not change the result.
    let mut recorder = RecordingBackend::new(skylake());
    let recorded = CoreMapper::new().map(&mut recorder).expect("recorded map");
    assert_eq!(recorded, reference, "recording must be transparent");

    // Replayed run: same pipeline, zero simulation behind it.
    let (_machine, trace) = recorder.into_parts();
    assert!(!trace.is_empty());
    let mut replay = ReplayBackend::new(trace);
    let replayed = CoreMapper::new().map(&mut replay).expect("replayed map");
    assert_eq!(replayed, recorded, "replay must be bit-identical");
}

/// Records a short op sequence and returns its trace.
fn short_trace() -> MeasurementTrace {
    let mut recorder = RecordingBackend::new(skylake());
    recorder.flush_caches();
    for i in 0..6u64 {
        recorder.write_line(OsCoreId::new(0), PhysAddr::new(i * 64));
    }
    recorder.into_parts().1
}

#[test]
fn divergence_panic_reports_position_and_both_ops() {
    let trace = short_trace();
    let mut replay = ReplayBackend::new(trace);
    replay.flush_caches();
    replay.write_line(OsCoreId::new(0), PhysAddr::new(0));
    // Issue a mismatching op: the trace recorded a write to 0x40 next.
    let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        replay.read_line(OsCoreId::new(3), PhysAddr::new(0x9999 * 64));
    }))
    .expect_err("divergence must panic");
    let msg = err
        .downcast_ref::<String>()
        .expect("panic payload is the rendered report");
    assert!(msg.contains("replay divergence at op 2 of 7"), "{msg}");
    assert!(msg.contains("pipeline issued: read_line"), "{msg}");
    assert!(msg.contains("trace recorded:  WriteLine"), "{msg}");
    assert!(msg.contains("preceding operations:"), "{msg}");
    assert!(msg.contains("FlushCaches"), "{msg}");
}

#[test]
fn exhaustion_divergence_reports_trace_end() {
    let trace = short_trace();
    let len = trace.len();
    let replay = ReplayBackend::new(trace);
    let mut replay2 = replay.clone();
    // Drain the whole trace legitimately.
    replay2.flush_caches();
    for i in 0..6u64 {
        replay2.write_line(OsCoreId::new(0), PhysAddr::new(i * 64));
    }
    assert!(replay2.is_exhausted());
    let report = replay2.divergence_report(len, "flush_caches()".to_owned());
    assert_eq!(report.position, len);
    assert_eq!(report.trace_len, len);
    assert!(report.recorded.is_none());
    assert_eq!(report.context.len(), 5);
    assert!(matches!(report.context[0], TraceOp::WriteLine { .. }));
    let rendered = report.to_string();
    assert!(rendered.contains("<exhausted>"), "{rendered}");
}

#[test]
fn fault_free_plan_is_transparent() {
    let mut reference = skylake();
    let want = CoreMapper::new().map(&mut reference).expect("clean map");

    let mut faulty = FaultyBackend::new(skylake(), FaultPlan::none(7));
    let got = CoreMapper::new().map(&mut faulty).expect("fault-free map");
    assert_eq!(got, want);
    assert_eq!(faulty.injected_faults(), 0);
}

#[test]
fn total_msr_failure_breaks_the_pipeline_cleanly() {
    let plan = FaultPlan::none(11).with_msr_fail_prob(1.0);
    let mut faulty = FaultyBackend::new(skylake(), plan);
    let result = CoreMapper::new().map(&mut faulty);
    assert!(result.is_err(), "mapping cannot succeed without MSR access");
    assert!(faulty.injected_faults() > 0);
}

#[test]
fn fault_injection_is_deterministic_per_seed() {
    let plan = FaultPlan::none(42)
        .with_counter_drop_prob(0.02)
        .with_counter_jitter(3);
    let run = |plan: FaultPlan| {
        let mut faulty = FaultyBackend::new(skylake(), plan);
        let result = CoreMapper::new().map(&mut faulty);
        (format!("{result:?}"), faulty.injected_faults())
    };
    let first = run(plan.clone());
    let second = run(plan);
    assert!(first.1 > 0, "plan must actually inject faults");
    assert_eq!(first, second, "same seed, same faults, same outcome");
}
