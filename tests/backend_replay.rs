//! Backend conformance and the record → replay regression workflow.
//!
//! The four shipped backends — the simulated `XeonMachine`, the recording
//! and replay wrappers, and the fault injector — are interchangeable
//! behind `MachineBackend`. These tests drive each through the same
//! generic code paths and pin down the central guarantee: a recorded
//! SkylakeXcc mapping campaign, replayed with zero simulation behind it,
//! reproduces the recovered `CoreMap` bit for bit.

use core_map::core::backend::{
    FaultPlan, FaultyBackend, MachineBackend, MeasurementTrace, RecordingBackend, ReplayBackend,
};
use core_map::core::CoreMapper;
use core_map::mesh::{DieTemplate, FloorplanBuilder, OsCoreId};
use core_map::uncore::{msr, MachineConfig, PhysAddr, XeonMachine};

fn skylake() -> XeonMachine {
    let plan = FloorplanBuilder::new(DieTemplate::SkylakeXcc)
        .build()
        .expect("SkylakeXcc floorplan");
    XeonMachine::new(plan, MachineConfig::default())
}

/// Exercises every `MachineBackend` method once, checking the invariants
/// the pipeline relies on. Deterministic, so the op sequence it issues is
/// identical on every backend — which is what lets a recorded run replay
/// through this same function.
fn conformance_suite<B: MachineBackend>(backend: &mut B) -> (u64, usize) {
    assert!(backend.core_count() > 0, "no cores");
    assert!(
        backend.cha_count() >= backend.core_count(),
        "fewer CHAs than cores"
    );
    let cores = backend.os_cores();
    assert_eq!(cores.len(), backend.core_count());
    assert!(
        cores.windows(2).all(|w| w[0] < w[1]),
        "os_cores not ascending"
    );
    let dim = backend.grid_dim();
    assert!(dim.rows * dim.cols >= backend.cha_count(), "grid too small");
    let (sets, ways) = backend.l2_geometry();
    assert!(sets > 0 && ways > 0);
    assert!(backend.address_space() > 0);

    let ppin = backend
        .read_msr(msr::MSR_PPIN)
        .expect("PPIN readable with privilege");
    let home = backend.home_of(PhysAddr::new(0x1000)).index();
    assert!(home < backend.cha_count());

    let before = backend.op_count();
    backend.write_line(OsCoreId::new(0), PhysAddr::new(0x1000));
    backend.read_line(OsCoreId::new(1), PhysAddr::new(0x1000));
    backend.flush_caches();
    assert!(
        backend.op_count() >= before,
        "op_count must not go backwards"
    );
    (ppin, home)
}

#[test]
fn xeon_machine_passes_conformance() {
    let mut machine = skylake();
    conformance_suite(&mut machine);
}

#[test]
fn recording_is_transparent_and_replay_conforms() {
    let mut recorder = RecordingBackend::new(skylake());
    let direct = conformance_suite(&mut recorder);
    let ops = recorder.recorded_ops();
    assert!(ops > 0, "conformance suite must cross the trait");
    let (_machine, trace) = recorder.into_parts();
    assert_eq!(trace.len(), ops);

    let mut replay = ReplayBackend::new(trace);
    let replayed = conformance_suite(&mut replay);
    assert_eq!(direct, replayed, "replay must reproduce recorded answers");
    assert!(replay.is_exhausted(), "suite must consume the whole trace");
}

#[test]
fn conformance_trace_survives_json_round_trip() {
    let mut recorder = RecordingBackend::new(skylake());
    let direct = conformance_suite(&mut recorder);
    let (_machine, trace) = recorder.into_parts();

    let json = serde_json::to_string(&trace).expect("trace serializes");
    let restored: MeasurementTrace = serde_json::from_str(&json).expect("trace deserializes");
    assert_eq!(restored, trace);

    let mut replay = ReplayBackend::new(restored);
    assert_eq!(conformance_suite(&mut replay), direct);
}

#[test]
fn recorded_skylake_campaign_replays_to_identical_coremap() {
    // Reference run on the bare simulator.
    let mut machine = skylake();
    let reference = CoreMapper::new().map(&mut machine).expect("reference map");

    // Recorded run: the wrapper must not change the result.
    let mut recorder = RecordingBackend::new(skylake());
    let recorded = CoreMapper::new().map(&mut recorder).expect("recorded map");
    assert_eq!(recorded, reference, "recording must be transparent");

    // Replayed run: same pipeline, zero simulation behind it.
    let (_machine, trace) = recorder.into_parts();
    assert!(!trace.is_empty());
    let mut replay = ReplayBackend::new(trace);
    let replayed = CoreMapper::new().map(&mut replay).expect("replayed map");
    assert_eq!(replayed, recorded, "replay must be bit-identical");
}

#[test]
fn fault_free_plan_is_transparent() {
    let mut reference = skylake();
    let want = CoreMapper::new().map(&mut reference).expect("clean map");

    let mut faulty = FaultyBackend::new(skylake(), FaultPlan::none(7));
    let got = CoreMapper::new().map(&mut faulty).expect("fault-free map");
    assert_eq!(got, want);
    assert_eq!(faulty.injected_faults(), 0);
}

#[test]
fn total_msr_failure_breaks_the_pipeline_cleanly() {
    let plan = FaultPlan::none(11).with_msr_fail_prob(1.0);
    let mut faulty = FaultyBackend::new(skylake(), plan);
    let result = CoreMapper::new().map(&mut faulty);
    assert!(result.is_err(), "mapping cannot succeed without MSR access");
    assert!(faulty.injected_faults() > 0);
}

#[test]
fn fault_injection_is_deterministic_per_seed() {
    let plan = FaultPlan::none(42)
        .with_counter_drop_prob(0.02)
        .with_counter_jitter(3);
    let run = |plan: FaultPlan| {
        let mut faulty = FaultyBackend::new(skylake(), plan);
        let result = CoreMapper::new().map(&mut faulty);
        (format!("{result:?}"), faulty.injected_faults())
    };
    let first = run(plan.clone());
    let second = run(plan);
    assert!(first.1 > 0, "plan must actually inject faults");
    assert_eq!(first, second, "same seed, same faults, same outcome");
}
