//! # core-map
//!
//! Umbrella crate for the reproduction of *"Know Your Neighbor: Physically
//! Locating Xeon Processor Cores on the Core Tile Grid"* (DATE 2022).
//!
//! This crate re-exports the workspace members under stable module names so
//! examples and downstream users can depend on a single crate:
//!
//! * [`mesh`] — tile grids, floorplans, dimension-order routing.
//! * [`ilp`] — the from-scratch MILP solver used by the reconstruction.
//! * [`uncore`] — simulated MSR / uncore-PMON / cache machine model.
//! * [`core`] — the three-step core-location mapping methodology.
//! * [`thermal`] — RC thermal model and the inter-core thermal covert
//!   channel.
//! * [`fleet`] — cloud-fleet instance generation and pattern statistics.
//! * [`obs`] — metrics/tracing registry instrumented through the pipeline.
//!
//! ```
//! use core_map::fleet::{CloudFleet, CpuModel};
//! use core_map::core::CoreMapper;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let fleet = CloudFleet::with_seed(42);
//! let instance = fleet.instance(CpuModel::Platinum8124M, 0)?;
//! let mut machine = instance.boot();
//! let map = CoreMapper::new().map(&mut machine)?;
//! assert_eq!(map.core_count(), 18);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use coremap_core as core;
pub use coremap_fleet as fleet;
pub use coremap_ilp as ilp;
pub use coremap_mesh as mesh;
pub use coremap_obs as obs;
pub use coremap_thermal as thermal;
pub use coremap_uncore as uncore;
